"""The paper's catalogue of queries, with their language placements.

Section 3-4 of the paper organizes concrete queries by where they live:

========================  =============================================
query                     status in the paper
========================  =============================================
non-emptiness, bounded-   FO (dense-order first-order definable)
ness, open-interval
containment, topology
midpoint / averages       FO+ only (need +); *not generic* -- not
                          queries in the Definition 3.1 sense
parity, graph             PTIME; **not** FO+ (Theorem 4.2); expressible
connectivity              in inflationary Datalog(not) (Theorem 4.4)
                          and in C-CALC_1 (Theorem 5.2)
region connectivity       computable; **not** linear (Theorem 4.3)
transitive closure        Datalog(not) (not FO)
========================  =============================================

This module provides each of them as executable artifacts: FO formula
builders, Datalog program builders, C-CALC formula builders, and
procedural implementations -- the raw material of experiments E2-E8.
"""

from __future__ import annotations

from typing import Sequence

from repro.cobjects.calculus import (
    CAnd,
    CConstraint,
    CExists,
    CForAll,
    CFormula,
    CNot,
    CRelation,
    ExistsSet,
    Member,
    SetVar,
)
from repro.cobjects.types import Q, SetType
from repro.core.atoms import eq, le, lt
from repro.core.database import Database
from repro.core.evaluator import evaluate, evaluate_boolean
from repro.core.formula import Formula, Not, conj, constraint, disj, exists, forall, rel
from repro.core.relation import Relation
from repro.core.terms import as_term
from repro.datalog.ast import Program, cons, pred, rule
from repro.linear.latoms import lin_eq
from repro.linear.region import is_connected

__all__ = [
    "nonempty_query",
    "bounded_query",
    "contains_open_interval_query",
    "is_dense_in_itself_query",
    "between_query",
    "midpoint_formula",
    "transitive_closure_program",
    "reachability_program",
    "interval_overlap_tc_program",
    "parity_ccalc",
    "graph_connectivity_procedural",
    "parity_procedural",
]


# ------------------------------------------------------------------ FO queries


def nonempty_query(name: str, arity: int) -> Formula:
    """``exists x1..xk R(x1..xk)`` -- FO."""
    variables = [f"q{i}" for i in range(arity)]
    return exists(variables, rel(name, *variables))


def bounded_query(name: str) -> Formula:
    """Is the unary relation bounded (above and below)?  FO."""
    above = exists("u", forall("x", rel(name, "x").implies(constraint(le("x", "u")))))
    below = exists("l", forall("x", rel(name, "x").implies(constraint(le("l", "x")))))
    return above & below


def contains_open_interval_query(name: str) -> Formula:
    """Does the unary relation have non-empty interior?  FO."""
    inside = constraint(lt("a", "x")) & constraint(lt("x", "b"))
    return exists(
        ["a", "b"],
        constraint(lt("a", "b"))
        & forall("x", inside.implies(rel(name, "x"))),
    )


def is_dense_in_itself_query(name: str) -> Formula:
    """No isolated points: every member is a limit of members.  FO."""
    y_near = (
        rel(name, "y")
        & constraint(lt("a", "y"))
        & constraint(lt("y", "b"))
        & Not(constraint(eq("x", "y")))
    )
    punctured = (
        constraint(lt("a", "x"))
        & constraint(lt("x", "b"))
    ).implies(exists("y", y_near))
    return forall(
        "x", rel(name, "x").implies(forall(["a", "b"], punctured))
    )


def between_query(name: str) -> Formula:
    """Points strictly between two members of the unary relation.  FO.

    Free variable: ``x``.
    """
    return exists(
        ["a", "b"],
        rel(name, "a")
        & rel(name, "b")
        & constraint(lt("a", "x"))
        & constraint(lt("x", "b")),
    )


# -------------------------------------------------------------- FO+ (and why)


def midpoint_formula(name: str):
    """``{z | exists x, y: S(x), S(y), x + y = 2z}`` -- FO+ only.

    Needs addition, hence FO+; and it is **not generic** (automorphisms
    of Q move midpoints), so by Definition 3.1 it is not a *query* --
    the paper's motivating example for restricting FO+ to its generic
    fragment.  Returns a core formula whose constraint atom is linear;
    evaluate with ``theory=LINEAR``.
    """
    return exists(
        ["mx", "my"],
        rel(name, "mx")
        & rel(name, "my")
        & constraint(lin_eq({"mx": 1, "my": 1}, {"z": 2})),
    )


# ----------------------------------------------------------- Datalog programs


def transitive_closure_program(edge: str = "E", out: str = "tc") -> Program:
    """Transitive closure -- Datalog(not) (not FO over finite graphs)."""
    return Program(
        [
            rule(out, ["x", "y"], pred(edge, "x", "y")),
            rule(out, ["x", "z"], pred(out, "x", "y"), pred(edge, "y", "z")),
        ],
        edb={edge: 2},
    )


def reachability_program(edge: str = "E", source: str = "Src", out: str = "reach") -> Program:
    """Reachable set from source vertices."""
    return Program(
        [
            rule(out, ["x"], pred(source, "x")),
            rule(out, ["y"], pred(out, "x"), pred(edge, "x", "y")),
        ],
        edb={edge: 2, source: 1},
    )


def interval_overlap_tc_program(intervals: str = "I", out: str = "linked") -> Program:
    """Connectivity of intervals by overlap, on an interval relation.

    ``I(lo, hi)`` stores closed intervals as pairs; two intervals are
    linked when they intersect; ``linked`` is the transitive closure --
    a dense-order Datalog program exercising constraint joins.
    """
    overlap = [
        pred(intervals, "a", "b"),
        pred(intervals, "c", "d"),
        cons(le("a", "d")),
        cons(le("c", "b")),
    ]
    return Program(
        [
            rule(out, ["a", "b", "c", "d"], *overlap),
            rule(
                out,
                ["a", "b", "e", "f"],
                pred(out, "a", "b", "c", "d"),
                pred(out, "c", "d", "e", "f"),
            ),
        ],
        edb={intervals: 2},
    )


# ----------------------------------------------------------------- C-CALC_1


def parity_ccalc(name: str = "S") -> CFormula:
    """Odd cardinality of a finite unary relation -- C-CALC_1.

    The Theorem 5.2 witness that C-CALC_1 goes beyond FO: guess a set
    ``T`` (ranging, by the active-domain semantics, over unions of
    cells), pin it to the odd-indexed elements of ``S`` by alternation
    along the order, and test the maximum.
    """
    T = SetVar("T", SetType(Q))

    def member_s(v: str) -> CFormula:
        return CRelation(name, (as_term(v),))

    def in_t(v: str) -> CFormula:
        return Member((as_term(v),), T)

    def less(a: str, b: str) -> CFormula:
        return CConstraint(lt(a, b))

    def predecessor(y: str, x: str) -> CFormula:
        gap = CExists(("pz",), CAnd((member_s("pz"), less(y, "pz"), less("pz", x))))
        return CAnd((member_s(y), less(y, x), CNot(gap)))

    has_pred = CExists(("py",), predecessor("py", "px"))
    subset = CForAll(("px",), Member((as_term("px"),), T).implies(member_s("px")))
    first_in = CForAll(
        ("px",), CAnd((member_s("px"), CNot(has_pred))).implies(in_t("px"))
    )
    alternate = CForAll(
        ("px",),
        member_s("px").implies(
            CForAll(
                ("py",),
                predecessor("py", "px").implies(in_t("px").iff(CNot(in_t("py")))),
            )
        ),
    )
    is_max = CAnd(
        (
            member_s("px"),
            CNot(CExists(("pz",), CAnd((member_s("pz"), less("px", "pz"))))),
        )
    )
    odd = CExists(("px",), CAnd((is_max, in_t("px"))))
    return ExistsSet(T, CAnd((subset, first_in, alternate, odd)))


# ----------------------------------------------------------------- procedural


def parity_procedural(database: Database, name: str = "S") -> bool:
    """Reference implementation: odd cardinality of a finite unary relation."""
    relation = database[name]
    points = set()
    for t in relation.tuples:
        sample = t.sample_point()
        points.add(next(iter(sample.values())))
    return len(points) % 2 == 1


def graph_connectivity_procedural(
    database: Database, vertices: str = "V", edges: str = "E"
) -> bool:
    """Reference implementation: connectivity of a finite graph."""
    vs = {t.sample_point()[database[vertices].schema[0]] for t in database[vertices].tuples}
    if len(vs) <= 1:
        return True
    adj = {v: set() for v in vs}
    xcol, ycol = database[edges].schema
    for t in database[edges].tuples:
        p = t.sample_point()
        a, b = p[xcol], p[ycol]
        if a in adj and b in adj:
            adj[a].add(b)
            adj[b].add(a)
    start = next(iter(vs))
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for other in adj[node]:
            if other not in seen:
                seen.add(other)
                stack.append(other)
    return seen == vs
