"""The paper's query catalogue, Allen interval relations, FO topology."""

import repro.queries.allen as allen

from repro.queries.library import (
    between_query,
    bounded_query,
    contains_open_interval_query,
    graph_connectivity_procedural,
    interval_overlap_tc_program,
    is_dense_in_itself_query,
    midpoint_formula,
    nonempty_query,
    parity_ccalc,
    parity_procedural,
    reachability_program,
    transitive_closure_program,
)
from repro.queries.topology import (
    boundary,
    boundary_formula,
    closure,
    closure_formula,
    interior,
    interior_formula,
    isolated_points,
    isolated_points_formula,
    limit_points,
    limit_points_formula,
)

__all__ = [
    "allen",
    "between_query",
    "bounded_query",
    "contains_open_interval_query",
    "graph_connectivity_procedural",
    "interval_overlap_tc_program",
    "is_dense_in_itself_query",
    "midpoint_formula",
    "nonempty_query",
    "parity_ccalc",
    "parity_procedural",
    "reachability_program",
    "transitive_closure_program",
    "boundary",
    "boundary_formula",
    "closure",
    "closure_formula",
    "interior",
    "interior_formula",
    "isolated_points",
    "isolated_points_formula",
    "limit_points",
    "limit_points_formula",
]
