"""Topological (region) connectivity of generalized relations.

Paper Theorem 4.3 proves that *region connectivity* -- is the pointset
denoted by the database topologically connected? -- is **not** definable
with linear constraints (not in FO+).  The query is nevertheless
computable; this module implements the exact decision procedure used
by experiment E5, so the reproduction can (a) run the query the paper
talks about and (b) demonstrate that no small FO+ formula computes it.

Algorithm.  Every generalized tuple of either shipped theory denotes a
*convex* set (all atoms are linear inequalities).  For a non-empty
convex set ``S`` given by strict and weak linear constraints, the
topological closure ``cl(S)`` is obtained by simply weakening every
strict constraint (proof: the weakened set is closed and contains
``S``; conversely, for ``q`` in the weakened set and ``p`` in ``S``,
the segment ``(q, p]`` lies in ``S``, so ``q`` is in ``cl(S)``).

Two convex cells ``A`` and ``B`` are *glued* when
``cl(A) meets B`` or ``A meets cl(B)``; a finite union of convex sets
is connected iff its gluing graph is connected (one direction: a point
of ``cl(A) inter B`` connects ``A union B``; the other: a component
split induces two separated sets because closure distributes over
finite unions).  Both sides of the criterion are decided exactly by
conjunction satisfiability in the underlying theory.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.core.gtuple import GTuple
from repro.core.relation import Relation

__all__ = [
    "closure_tuple",
    "closure",
    "tuples_glued",
    "gluing_graph",
    "is_connected",
    "connected_components",
    "count_components",
]


def closure_tuple(t: GTuple) -> GTuple:
    """Topological closure of one (convex, non-empty) generalized tuple."""
    weakened = [t.theory.weaken_atom(a) for a in t.atoms]
    made = GTuple.make(t.theory, t.schema, weakened)
    if made is None:  # pragma: no cover - weakening cannot lose satisfiability
        raise AssertionError("closure of a non-empty set became empty")
    return made


def closure(relation: Relation) -> Relation:
    """Topological closure of a generalized relation (finite union)."""
    return Relation(
        relation.theory, relation.schema, [closure_tuple(t) for t in relation.tuples]
    )


def tuples_glued(a: GTuple, b: GTuple) -> bool:
    """Do the convex cells ``a`` and ``b`` touch (union connected)?"""
    theory = a.theory
    first = list(closure_tuple(a).atoms) + list(b.atoms)
    if theory.is_satisfiable(first):
        return True
    second = list(a.atoms) + list(closure_tuple(b).atoms)
    return theory.is_satisfiable(second)


def gluing_graph(relation: Relation) -> Dict[int, Set[int]]:
    """Adjacency (by tuple index) of the gluing relation."""
    n = len(relation.tuples)
    graph: Dict[int, Set[int]] = {i: set() for i in range(n)}
    for i in range(n):
        for j in range(i + 1, n):
            if tuples_glued(relation.tuples[i], relation.tuples[j]):
                graph[i].add(j)
                graph[j].add(i)
    return graph


def _components(graph: Dict[int, Set[int]]) -> List[List[int]]:
    seen: Set[int] = set()
    out: List[List[int]] = []
    for start in graph:
        if start in seen:
            continue
        stack = [start]
        component = []
        seen.add(start)
        while stack:
            node = stack.pop()
            component.append(node)
            for neighbour in graph[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        out.append(sorted(component))
    return out


def connected_components(relation: Relation) -> List[Relation]:
    """The topologically connected components, each as a relation.

    (Components of the *gluing graph*; each returned relation is a
    maximal connected union of the input's cells.)
    """
    graph = gluing_graph(relation)
    out = []
    for component in _components(graph):
        out.append(
            Relation(
                relation.theory,
                relation.schema,
                [relation.tuples[i] for i in component],
            )
        )
    return out


def count_components(relation: Relation) -> int:
    """Number of topologically connected components (0 for empty)."""
    if relation.is_empty():
        return 0
    return len(_components(gluing_graph(relation)))


def is_connected(relation: Relation) -> bool:
    """Is the denoted pointset topologically connected?

    The empty set counts as connected (vacuously), matching the
    convention that connectivity queries return true on empty input.
    """
    return count_components(relation) <= 1
