"""Linear terms and atoms: the language of FO+ (paper Section 4).

FO+ extends FO with a built-in addition ``+`` over Q.  Its atomic
constraints are linear: ``a1*x1 + ... + ak*xk + c  op  0`` with exact
rational coefficients and ``op`` in ``{<, <=, =}`` (``!=`` is a surface
form, expanded into a disjunction).  By [Tar51] restricted to the
additive fragment, this theory admits quantifier elimination --
implemented as Fourier-Motzkin in :mod:`repro.linear.theory`.

:class:`LinExpr` is an immutable normalized linear expression;
:class:`LinAtom` implements the same structural protocol as the
dense-order :class:`~repro.core.atoms.Atom` (``variables``,
``constants``, ``substitute``, ``negate``, ``expand_ne``, ``evaluate``),
so formulas and the generic engine work unchanged over either theory.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.atoms import Atom, Op
from repro.core.terms import Const, Term, Var, as_fraction
from repro.errors import TheoryError

__all__ = [
    "LinExpr",
    "LinAtom",
    "LinOp",
    "linexpr",
    "linatom",
    "lin_lt",
    "lin_le",
    "lin_eq",
    "lin_ne",
    "lin_ge",
    "lin_gt",
    "from_dense_atom",
]


class LinOp(enum.Enum):
    """Comparisons of a linear expression against zero."""

    LT = "<"
    LE = "<="
    EQ = "="


@dataclass(frozen=True)
class LinExpr:
    """A normalized linear expression ``sum(coeff * var) + const``.

    ``coeffs`` is sorted by variable name and contains no zero
    coefficients, so structural equality is semantic equality.
    """

    coeffs: Tuple[Tuple[str, Fraction], ...]
    const: Fraction

    # ------------------------------------------------------------ construction

    @classmethod
    def make(cls, coeffs: Mapping[str, object] = (), const: object = 0) -> "LinExpr":
        cleaned: Dict[str, Fraction] = {}
        for name, coeff in dict(coeffs).items():
            value = as_fraction(coeff)
            if value:
                cleaned[name] = value
        return cls(tuple(sorted(cleaned.items())), as_fraction(const))

    @classmethod
    def of_var(cls, name: str) -> "LinExpr":
        return cls(((name, Fraction(1)),), Fraction(0))

    @classmethod
    def of_const(cls, value: object) -> "LinExpr":
        return cls((), as_fraction(value))

    @classmethod
    def of_term(cls, term: Term) -> "LinExpr":
        if isinstance(term, Var):
            return cls.of_var(term.name)
        return cls.of_const(term.value)

    # -------------------------------------------------------------- arithmetic

    def __add__(self, other: "LinExpr") -> "LinExpr":
        coeffs = dict(self.coeffs)
        for name, coeff in other.coeffs:
            coeffs[name] = coeffs.get(name, Fraction(0)) + coeff
        return LinExpr.make(coeffs, self.const + other.const)

    def __sub__(self, other: "LinExpr") -> "LinExpr":
        return self + other.scale(Fraction(-1))

    def scale(self, factor: Fraction) -> "LinExpr":
        if not factor:
            return LinExpr.of_const(0)
        return LinExpr(
            tuple((n, c * factor) for n, c in self.coeffs), self.const * factor
        )

    def coefficient(self, name: str) -> Fraction:
        for n, c in self.coeffs:
            if n == name:
                return c
        return Fraction(0)

    def drop(self, name: str) -> "LinExpr":
        """The expression with variable ``name`` removed."""
        return LinExpr(tuple((n, c) for n, c in self.coeffs if n != name), self.const)

    def substitute(self, mapping: Mapping[str, "LinExpr"]) -> "LinExpr":
        """Replace variables by linear expressions."""
        out = LinExpr.of_const(self.const)
        for name, coeff in self.coeffs:
            if name in mapping:
                out = out + mapping[name].scale(coeff)
            else:
                out = out + LinExpr(((name, coeff),), Fraction(0))
        return out

    # -------------------------------------------------------------- inspection

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def variables(self) -> FrozenSet[Var]:
        return frozenset(Var(n) for n, _ in self.coeffs)

    def evaluate(self, assignment: Mapping[Var, Fraction]) -> Fraction:
        total = self.const
        for name, coeff in self.coeffs:
            try:
                total += coeff * assignment[Var(name)]
            except KeyError:
                raise TheoryError(f"no value for variable {name} in assignment") from None
        return total

    def __str__(self) -> str:
        if not self.coeffs:
            return str(self.const)
        parts: List[str] = []
        for name, coeff in self.coeffs:
            if coeff == 1:
                text = name
            elif coeff == -1:
                text = f"-{name}"
            else:
                text = f"{coeff}*{name}"
            if parts and not text.startswith("-"):
                parts.append(f"+ {text}")
            elif parts:
                parts.append(f"- {text[1:]}")
            else:
                parts.append(text)
        if self.const:
            sign = "+" if self.const > 0 else "-"
            parts.append(f"{sign} {abs(self.const)}")
        return " ".join(parts)


def linexpr(value: Union[LinExpr, Mapping, Term, str, int, Fraction]) -> LinExpr:
    """Coerce mappings/terms/names/numbers to a :class:`LinExpr`."""
    if isinstance(value, LinExpr):
        return value
    if isinstance(value, Mapping):
        return LinExpr.make(value)
    if isinstance(value, str):
        return LinExpr.of_var(value)
    if isinstance(value, (Var, Const)):
        return LinExpr.of_term(value)
    return LinExpr.of_const(value)


@dataclass(frozen=True)
class LinAtom:
    """A normalized linear atom ``expr op 0``.

    Normalization divides by the absolute value of the leading
    coefficient (and for equalities makes it ``+1``), so equal
    half-planes compare equal structurally.
    """

    expr: LinExpr
    op: LinOp

    # ------------------------------------------------------------ protocol

    @property
    def variables(self) -> FrozenSet[Var]:
        return self.expr.variables()

    @property
    def constants(self) -> FrozenSet[Fraction]:
        """Constants of the atom's normal form (the constant term)."""
        if self.expr.const:
            return frozenset({self.expr.const})
        return frozenset()

    def substitute(self, mapping: Mapping[Var, Term]) -> Union["LinAtom", bool]:
        replacement = {
            v.name: LinExpr.of_term(t) for v, t in mapping.items()
        }
        return linatom(self.expr.substitute(replacement), self.op)

    def negate(self) -> List["LinAtom"]:
        """Negation as a disjunction of linear atoms."""
        # self.expr has at least one variable, so linatom() cannot fold
        if self.op is LinOp.LT:  # not(e < 0) == -e <= 0
            return [linatom(self.expr.scale(Fraction(-1)), LinOp.LE)]
        if self.op is LinOp.LE:  # not(e <= 0) == -e < 0
            return [linatom(self.expr.scale(Fraction(-1)), LinOp.LT)]
        # not(e = 0) == e < 0 or -e < 0
        return [
            linatom(self.expr, LinOp.LT),
            linatom(self.expr.scale(Fraction(-1)), LinOp.LT),
        ]

    def expand_ne(self) -> List["LinAtom"]:
        """Kept for protocol compatibility; LinAtom has no NE form."""
        return [self]

    def evaluate(self, assignment: Mapping[Var, Fraction]) -> bool:
        value = self.expr.evaluate(assignment)
        if self.op is LinOp.LT:
            return value < 0
        if self.op is LinOp.LE:
            return value <= 0
        return value == 0

    def __str__(self) -> str:
        return f"{self.expr} {self.op.value} 0"


def linatom(expr: LinExpr, op: LinOp) -> Union[LinAtom, bool]:
    """Normalize ``expr op 0``; folds ground atoms to booleans."""
    if expr.is_constant:
        if op is LinOp.LT:
            return expr.const < 0
        if op is LinOp.LE:
            return expr.const <= 0
        return expr.const == 0
    lead = expr.coeffs[0][1]
    if op is LinOp.EQ:
        expr = expr.scale(Fraction(1) / lead)
    else:
        expr = expr.scale(Fraction(1) / abs(lead))
    return LinAtom(expr, op)


def _compare(left, right, op: LinOp) -> Union[LinAtom, bool]:
    return linatom(linexpr(left) - linexpr(right), op)


def lin_lt(left, right) -> Union[LinAtom, bool]:
    """``left < right`` over linear expressions."""
    return _compare(left, right, LinOp.LT)


def lin_le(left, right) -> Union[LinAtom, bool]:
    """``left <= right``"""
    return _compare(left, right, LinOp.LE)


def lin_eq(left, right) -> Union[LinAtom, bool]:
    """``left = right``"""
    return _compare(left, right, LinOp.EQ)


def lin_ge(left, right) -> Union[LinAtom, bool]:
    """``left >= right``"""
    return _compare(right, left, LinOp.LE)


def lin_gt(left, right) -> Union[LinAtom, bool]:
    """``left > right``"""
    return _compare(right, left, LinOp.LT)


def lin_ne(left, right) -> List[LinAtom]:
    """``left != right`` as a disjunction (list) of strict atoms."""
    diff = linexpr(left) - linexpr(right)
    parts = []
    for candidate in (linatom(diff, LinOp.LT), linatom(diff.scale(Fraction(-1)), LinOp.LT)):
        if candidate is True:
            return [candidate]  # pragma: no cover - strict ground atom pairs
        if candidate is not False:
            parts.append(candidate)
    return parts


def from_dense_atom(a: Atom) -> Union[LinAtom, bool, List[LinAtom]]:
    """Translate a dense-order atom into the linear language.

    NE atoms return a *list* (disjunction); others a single atom.
    """
    left = LinExpr.of_term(a.left)
    right = LinExpr.of_term(a.right)
    if a.op is Op.LT:
        return linatom(left - right, LinOp.LT)
    if a.op is Op.LE:
        return linatom(left - right, LinOp.LE)
    if a.op is Op.EQ:
        return linatom(left - right, LinOp.EQ)
    if a.op is Op.NE:
        return lin_ne(left, right)
    raise TheoryError(f"unnormalized dense atom {a}")  # pragma: no cover
