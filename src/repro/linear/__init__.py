"""Linear constraints and FO+ (paper Section 4).

The generic engine (:class:`~repro.core.gtuple.GTuple`,
:class:`~repro.core.relation.Relation`, the formula AST and
:func:`~repro.core.evaluator.evaluate`) is theory-parametric; this
package supplies the linear theory:

* :mod:`repro.linear.latoms` -- linear expressions and atoms;
* :mod:`repro.linear.theory` -- Fourier-Motzkin projection,
  satisfiability, witnesses (:data:`LINEAR`);
* :mod:`repro.linear.region` -- exact topological connectivity of
  generalized relations (the query of Theorem 4.3).

Evaluating an FO+ query::

    from repro.core import Database, Relation, evaluate, exists, rel, constraint
    from repro.linear import LINEAR, lin_le, lin_lt

    db = Database(theory=LINEAR)
    db["R"] = Relation.from_atoms(
        ("x", "y"), [[lin_le({"x": 1, "y": 1}, 1)]], LINEAR
    )  # x + y <= 1
    out = evaluate(exists("y", rel("R", "x", "y")), db, theory=LINEAR)
"""

from repro.linear.latoms import (
    LinAtom,
    LinExpr,
    LinOp,
    from_dense_atom,
    lin_eq,
    lin_ge,
    lin_gt,
    lin_le,
    lin_lt,
    lin_ne,
    linatom,
    linexpr,
)
from repro.linear.region import (
    closure,
    closure_tuple,
    connected_components,
    count_components,
    gluing_graph,
    is_connected,
    tuples_glued,
)
from repro.linear.theory import LINEAR, LinearTheory
from repro.linear.translate import dense_to_linear_formula, dense_to_linear_relation

__all__ = [
    "LinAtom",
    "LinExpr",
    "LinOp",
    "from_dense_atom",
    "lin_eq",
    "lin_ge",
    "lin_gt",
    "lin_le",
    "lin_lt",
    "lin_ne",
    "linatom",
    "linexpr",
    "closure",
    "closure_tuple",
    "connected_components",
    "count_components",
    "gluing_graph",
    "is_connected",
    "tuples_glued",
    "LINEAR",
    "LinearTheory",
    "dense_to_linear_formula",
    "dense_to_linear_relation",
]
