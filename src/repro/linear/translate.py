"""Embedding FO into FO+: dense-order formulas/relations as linear ones.

The dense-order language is a sublanguage of the linear one (every
order atom ``x <= y`` is the linear atom ``x - y <= 0``).  These
translators make the inclusion executable:

* :func:`dense_to_linear_formula` rewrites every constraint atom of a
  formula (relation atoms are left alone -- point the evaluated query
  at a linear database);
* :func:`dense_to_linear_relation` re-types a generalized relation.

Used by the cross-theory integration tests (two decision procedures
cross-checking each other) and to run the FO topology operators over
linear databases.
"""

from __future__ import annotations

from repro.core.formula import (
    FALSE,
    TRUE,
    And,
    Constraint,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    RelationAtom,
    _Boolean,
)
from repro.core.gtuple import GTuple
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.errors import TheoryError
from repro.linear.latoms import from_dense_atom
from repro.linear.theory import LINEAR

__all__ = ["dense_to_linear_formula", "dense_to_linear_relation"]


def dense_to_linear_formula(formula: Formula) -> Formula:
    """Rewrite dense-order constraint atoms into linear atoms."""
    if isinstance(formula, _Boolean):
        return formula
    if isinstance(formula, Constraint):
        linear = from_dense_atom(formula.atom)
        if isinstance(linear, bool):
            return TRUE if linear else FALSE
        if isinstance(linear, list):  # NE split
            return Or(tuple(Constraint(a) for a in linear))
        return Constraint(linear)
    if isinstance(formula, RelationAtom):
        return formula
    if isinstance(formula, And):
        return And(tuple(dense_to_linear_formula(s) for s in formula.subs))
    if isinstance(formula, Or):
        return Or(tuple(dense_to_linear_formula(s) for s in formula.subs))
    if isinstance(formula, Not):
        return Not(dense_to_linear_formula(formula.sub))
    if isinstance(formula, Exists):
        return Exists(formula.variables, dense_to_linear_formula(formula.sub))
    if isinstance(formula, ForAll):
        return ForAll(formula.variables, dense_to_linear_formula(formula.sub))
    raise TheoryError(f"cannot translate formula node {type(formula).__name__}")


def dense_to_linear_relation(relation: Relation) -> Relation:
    """Re-type a dense-order generalized relation as a linear one."""
    if relation.theory is not DENSE_ORDER:
        raise TheoryError("input must be a dense-order relation")
    tuples = []
    for t in relation.tuples:
        atoms = []
        for a in t.atoms:
            linear = from_dense_atom(a)
            if isinstance(linear, (bool, list)):  # pragma: no cover - NE-free
                raise TheoryError("unexpected atom form in canonical tuple")
            atoms.append(linear)
        made = GTuple.make(LINEAR, relation.schema, atoms)
        if made is not None:  # pragma: no branch - satisfiable by construction
            tuples.append(made)
    return Relation(LINEAR, relation.schema, tuples)
