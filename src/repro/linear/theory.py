"""The linear constraint theory: Fourier-Motzkin elimination over Q.

FO+ (paper Section 4) is first-order logic with linear constraints.
Because the structure ``(Q, +, <=)`` is the *additive* fragment of
Tarski's decidable theory of the reals [Tar51], quantifier elimination
does not need cylindrical algebraic decomposition: Fourier-Motzkin
elimination with strict/weak bookkeeping is complete.

:class:`LinearTheory` plugs this into the generic engine: generalized
tuples, relations, formulas and the Datalog engine all work unchanged
with linear atoms.  Satisfiability of a conjunction is decided by
eliminating every variable and folding the resulting ground atoms;
witnesses are produced by back-substitution through the elimination
order.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.terms import Const, Term, Var
from repro.core.theory import ConstraintTheory
from repro.errors import TheoryError
from repro.linear.latoms import LinAtom, LinExpr, LinOp, lin_eq, linatom

__all__ = ["LinearTheory", "LINEAR"]


def _solve_for(a: LinAtom, name: str) -> Tuple[str, LinExpr, bool]:
    """Rewrite ``a`` as a bound on variable ``name``.

    Returns ``(kind, bound_expr, strict)`` with kind in
    ``{"lower", "upper", "equal"}`` such that the atom is equivalent to
    ``var (>|>=) bound``, ``var (<|<=) bound`` or ``var = bound``.
    """
    coeff = a.expr.coefficient(name)
    if not coeff:
        raise TheoryError(f"atom {a} does not mention {name}")  # pragma: no cover
    bound = a.expr.drop(name).scale(Fraction(-1) / coeff)
    if a.op is LinOp.EQ:
        return ("equal", bound, False)
    strict = a.op is LinOp.LT
    if coeff > 0:  # coeff*var + rest op 0  =>  var op bound
        return ("upper", bound, strict)
    return ("lower", bound, strict)


class LinearTheory(ConstraintTheory):
    """Conjunctions of linear atoms, with Fourier-Motzkin projection."""

    name = "linear"

    def coerce_atom(self, a: Union[LinAtom, bool]) -> Union[LinAtom, bool]:
        if isinstance(a, bool):
            return a
        if not isinstance(a, LinAtom):
            raise TheoryError(f"not a linear atom: {a!r}")
        return a

    def atom_variables(self, a: LinAtom) -> FrozenSet[Var]:
        return a.variables

    def atom_constants(self, a: LinAtom) -> FrozenSet[Fraction]:
        return a.constants

    def negate_atom(self, a: LinAtom) -> List[LinAtom]:
        return a.negate()

    def substitute_atom(self, a: LinAtom, mapping: Mapping[Var, Term]) -> Union[LinAtom, bool]:
        return a.substitute(mapping)

    def equality_atom(self, left: Term, right: Term) -> Union[LinAtom, bool]:
        return lin_eq(LinExpr.of_term(left), LinExpr.of_term(right))

    def weaken_atom(self, a: LinAtom) -> LinAtom:
        if a.op is LinOp.LT:
            return LinAtom(a.expr, LinOp.LE)
        return a

    def evaluate_atom(self, a: LinAtom, assignment: Mapping[Var, Fraction]) -> bool:
        return a.evaluate(assignment)

    # ------------------------------------------------------------- projection

    def project_out(self, conjunction: Sequence[LinAtom], var: Var) -> List[List[LinAtom]]:
        """Fourier-Motzkin elimination of one variable.

        An equality pins the variable and is substituted; otherwise each
        lower bound is combined with each upper bound, strict when
        either side is strict.  The result is a single conjunction (no
        case splits) and may be unsatisfiable only through ground
        folding, reported as an empty disjunction.
        """
        name = var.name
        keep: List[LinAtom] = []
        lowers: List[Tuple[LinExpr, bool]] = []
        uppers: List[Tuple[LinExpr, bool]] = []
        pin: Optional[LinExpr] = None
        pin_atom: Optional[LinAtom] = None
        for a in conjunction:
            if not a.expr.coefficient(name):
                keep.append(a)
                continue
            kind, bound, strict = _solve_for(a, name)
            if kind == "equal":
                if pin is None:
                    pin, pin_atom = bound, a
                else:
                    lowers.append((bound, False))
                    uppers.append((bound, False))
            elif kind == "lower":
                lowers.append((bound, strict))
            else:
                uppers.append((bound, strict))
        if pin is not None:
            out: List[LinAtom] = []
            replacement = {name: pin}
            for a in conjunction:
                if a is pin_atom:
                    continue
                sub = linatom(a.expr.substitute(replacement), a.op)
                if sub is True:
                    continue
                if sub is False:
                    return []
                out.append(sub)
            return [out]
        for low, low_strict in lowers:
            for high, high_strict in uppers:
                op = LinOp.LT if (low_strict or high_strict) else LinOp.LE
                made = linatom(low - high, op)
                if made is True:
                    continue
                if made is False:
                    return []
                keep.append(made)
        return [keep]

    # ---------------------------------------------------------- satisfiability

    def is_satisfiable(self, conjunction: Iterable[LinAtom]) -> bool:
        atoms = list(conjunction)
        while True:
            names = sorted({n for a in atoms for n, _ in a.expr.coeffs})
            if not names:
                return True  # non-folding atoms always mention a variable
            cases = self.project_out(atoms, Var(names[-1]))
            if not cases:
                return False
            [atoms] = cases

    def entails(self, conjunction: Iterable[LinAtom], a: LinAtom) -> bool:
        atoms = list(conjunction)
        if not self.is_satisfiable(atoms):
            return True
        for disjunct in a.negate():
            if self.is_satisfiable(atoms + [disjunct]):
                return False
        return True

    def canonicalize(self, conjunction: Iterable[LinAtom]) -> FrozenSet[LinAtom]:
        """Normalized-atom set with entailed atoms pruned.

        Cheaper than a true canonical form (which would need a full
        redundancy analysis); sound because only implied atoms are
        dropped.
        """
        atoms = list(dict.fromkeys(conjunction))
        kept: List[LinAtom] = []
        for i, a in enumerate(atoms):
            others = kept + atoms[i + 1 :]
            if others and self.entails(others, a):
                continue
            kept.append(a)
        return frozenset(kept)

    # ----------------------------------------------------------------- solve

    def solve(self, conjunction: Iterable[LinAtom]) -> Optional[Dict[Var, Fraction]]:
        atoms = list(conjunction)
        if not self.is_satisfiable(atoms):
            return None
        names = sorted({n for a in atoms for n, _ in a.expr.coeffs})
        return self._solve_ordered(atoms, names)

    def _solve_ordered(
        self, atoms: List[LinAtom], names: List[str]
    ) -> Dict[Var, Fraction]:
        if not names:
            return {}
        name = names[-1]
        cases = self.project_out(atoms, Var(name))
        if not cases:  # pragma: no cover - caller checked satisfiability
            raise TheoryError("projection of a satisfiable system became empty")
        [reduced] = cases
        witness = self._solve_ordered(reduced, names[:-1])
        lo: Optional[Fraction] = None
        hi: Optional[Fraction] = None
        lo_strict = hi_strict = False
        pin: Optional[Fraction] = None
        for a in atoms:
            if not a.expr.coefficient(name):
                continue
            kind, bound, strict = _solve_for(a, name)
            value = bound.evaluate(witness)
            if kind == "equal":
                pin = value
            elif kind == "lower":
                if lo is None or value > lo or (value == lo and strict):
                    lo, lo_strict = value, strict
            else:
                if hi is None or value < hi or (value == hi and strict):
                    hi, hi_strict = value, strict
        if pin is not None:
            choice = pin
        elif lo is None and hi is None:
            choice = Fraction(0)
        elif lo is None:
            choice = hi - 1
        elif hi is None:
            choice = lo + 1
        elif lo == hi:
            if lo_strict or hi_strict:  # pragma: no cover - unsat, filtered earlier
                raise TheoryError("empty interval for witness")
            choice = lo
        else:
            choice = (lo + hi) / 2
        witness = dict(witness)
        witness[Var(name)] = choice
        return witness


#: the shared linear theory instance
LINEAR = LinearTheory()
