"""Shard / fan-out / merge drivers for the parallel relation algebra.

Each driver here is called from a ``Relation`` operation *between* its
existing preamble (fault point, guard note, tracer call counters) and
postamble (result charging, in/out metrics), replacing only the inner
loop: shard the tuple set (:mod:`repro.parallel.shards`), run the
picklable kernels (:mod:`repro.parallel.worker`) on the context's pool,
and merge.

Two invariants carry the correctness story:

* **Set equivalence** — a relation is the union of its tuples, so the
  union of per-shard outputs of a tuple-local kernel equals the serial
  output *set* (join, projection), and the absorption merge is
  byte-identical to serial (contiguous index ranges, concatenated in
  order).

* **Guard parity** — workers never see the guard; the parent replays
  the serial-equivalent charges at merge time (one ``qe`` note per
  eliminated column with the summed survivor count, one tuple charge
  for the same total), so an :class:`EvaluationGuard`'s counters and
  ``tuples_materialized`` match a serial run of the same query exactly
  and budgets keep binding under parallel evaluation.

Every driver emits ``parallel.*`` metrics into the active tracer:
shard count, skew (max/mean shard size), summed worker seconds, merge
seconds, and utilization (worker seconds over wall seconds × workers).
Each dispatch runs under an ambient ``parallel.<op>.dispatch`` span —
the graft point for cross-process trace stitching
(:mod:`repro.obs.stitch`) — and returns a ``dispatch_info`` dict
(shards, skew, stitched worker cache deltas) that the relation ops
fold into the cost ledger (:mod:`repro.obs.ledger`).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from repro.obs.trace import active_tracer, span
from repro.parallel.context import ExecutionContext
from repro.parallel.shards import index_ranges, shard_indices, shard_skew
from repro.parallel.worker import absorb_shard, join_shard, project_shard

__all__ = ["parallel_join", "parallel_project", "parallel_absorb"]


def _run(op: str, ctx: ExecutionContext, fn, payloads, shards, degraded=None):
    """Dispatch one batch under an ambient ``parallel.<op>.dispatch``
    span — the graft point: worker telemetry harvested inside
    ``run_shards`` stitches under the innermost open span, so every
    worker span nests under the dispatch that ran it."""
    with span(f"parallel.{op}.dispatch", shards=len(shards),
              workers=ctx.workers, pool=ctx.pool_kind):
        return ctx.run_shards(fn, payloads, degraded=degraded)


def _dispatch_info(ctx: ExecutionContext, shards) -> dict:
    """The dispatch shape the cost ledger records per operator call:
    shard count, skew, and the stitched worker kernel-cache deltas of
    the batch (zero for thread pools; see
    :class:`~repro.parallel.resilience.BatchReport`)."""
    report = ctx.last_report
    return {
        "shards": len(shards),
        "skew": shard_skew(shards),
        "cache_hits": report.worker_cache_hits if report is not None else 0,
        "cache_misses": report.worker_cache_misses if report is not None else 0,
    }


def _emit(
    op: str,
    shards: Sequence[Sequence],
    ctx: ExecutionContext,
    wall: float,
    worker_seconds: float,
    merge_seconds: float,
) -> None:
    tracer = active_tracer()
    if tracer is None:
        return
    metrics = tracer.metrics
    metrics.count(f"parallel.{op}.calls")
    metrics.observe("parallel.shards", len(shards))
    metrics.observe("parallel.skew", shard_skew(shards))
    metrics.observe("parallel.worker_seconds", worker_seconds)
    metrics.observe("parallel.merge_seconds", merge_seconds)
    if wall > 0:
        metrics.observe(
            "parallel.utilization", worker_seconds / (wall * ctx.workers)
        )
    # resilience gauges: emitted unconditionally (a zero is a signal —
    # "nothing went wrong" — and dashboards need the key to exist)
    metrics.observe("parallel.pool_fallbacks", ctx.fallbacks)
    metrics.observe("parallel.retries", ctx.retries)
    metrics.observe("parallel.shard_deadline_exceeded", ctx.deadline_exceeded)
    metrics.observe("parallel.quarantined", ctx.quarantined)
    metrics.observe("parallel.dropped_shards", ctx.dropped_shards)
    metrics.observe("parallel.pool_restarts", ctx.pool_restarts)


def parallel_join(
    left_tuples: Sequence,
    wide_b: Sequence,
    combined: Tuple[str, ...],
    partition,
    ctx: ExecutionContext,
    guard,
) -> Tuple[list, int, dict]:
    """Fan the left side's pairing loop out across shards.

    The right side (already widened) and the partition index are
    replicated to every shard; only the left tuples are partitioned.
    Returns ``(merged_tuples, pairs_considered, dispatch_info)`` — the
    same multiset of merged tuples and the same pair count as the
    serial loop, plus the dispatch shape for the cost ledger.
    """
    shards = shard_indices(left_tuples, ctx.workers, ctx.shard_strategy)
    if partition is None:
        buckets, unpinned, pins_a = None, (), [None] * len(left_tuples)
    else:
        buckets, unpinned, pins_a = partition
    payloads = [
        (
            [(left_tuples[i], pins_a[i]) for i in shard],
            combined,
            list(wide_b),
            buckets,
            unpinned,
        )
        for shard in shards
    ]
    t0 = time.perf_counter()
    results = _run("join", ctx, join_shard, payloads, shards)
    wall = time.perf_counter() - t0
    merge0 = time.perf_counter()
    out: List = []
    considered = 0
    worker_seconds = 0.0
    for result in results:
        if result is None:  # shard dropped under on_failure="partial"
            continue
        shard_out, shard_considered, seconds = result
        out.extend(shard_out)
        considered += shard_considered
        worker_seconds += seconds
    if guard is not None:
        # the serial loop ticks once per left tuple; one deadline /
        # cancellation check per shard keeps budgets binding without a
        # pretend-loop (tick counts are not part of guard parity)
        for _ in shards:
            guard.tick("relation.join")
    merge_seconds = time.perf_counter() - merge0
    _emit("join", shards, ctx, wall, worker_seconds, merge_seconds)
    return out, considered, _dispatch_info(ctx, shards)


def parallel_project(
    tuples: Sequence,
    victims: Sequence[str],
    target: Tuple[str, ...],
    ctx: ExecutionContext,
    guard,
    tracer,
) -> Tuple[list, dict]:
    """Fan the column-elimination pass out across shards of tuples.

    Quantifier elimination is tuple-local, so shards run the whole
    victim-column sequence independently.  Guard parity: the serial
    loop notes ``qe`` / charges tuples once per column with that
    column's survivor count; the summed per-shard counts are replayed
    here in the same column order, so counters and charged tuples are
    identical to serial.  Returns ``(reordered_tuples, dispatch_info)``.
    """
    shards = shard_indices(tuples, ctx.workers, ctx.shard_strategy)
    payloads = [
        ([tuples[i] for i in shard], tuple(victims), target) for shard in shards
    ]
    t0 = time.perf_counter()
    results = _run("project", ctx, project_shard, payloads, shards)
    wall = time.perf_counter() - t0
    merge0 = time.perf_counter()
    out: List = []
    worker_seconds = 0.0
    column_totals = [0] * len(victims)
    for result in results:
        if result is None:  # shard dropped under on_failure="partial"
            continue
        shard_out, counts, seconds = result
        out.extend(shard_out)
        worker_seconds += seconds
        for c, n in enumerate(counts):
            column_totals[c] += n
    for total in column_totals:
        if guard is not None:
            guard.note("qe", total)
            guard.on_tuples(total, "relation.project")
            guard.tick("relation.project")
        if tracer is not None:
            tracer.metrics.count("qe.eliminated_vars")
            tracer.metrics.observe("qe.survivors", total)
    merge_seconds = time.perf_counter() - merge0
    _emit("project", shards, ctx, wall, worker_seconds, merge_seconds)
    return out, _dispatch_info(ctx, shards)


def parallel_absorb(
    distinct: Sequence, ctx: ExecutionContext
) -> Tuple[list, dict]:
    """Fan the absorption survivor scan out across index ranges.

    Each shard receives the full deduplicated list (subsumption is a
    global test) and decides one contiguous range; concatenating the
    surviving indices in range order reproduces the serial
    ``_absorb`` result byte-for-byte.  Returns
    ``(kept_tuples, dispatch_info)``.
    """
    ranges = index_ranges(len(distinct), ctx.workers)
    distinct = list(distinct)
    payloads = [(distinct, r.start, r.stop) for r in ranges]
    t0 = time.perf_counter()
    # absorption has a semantically exact degraded fallback: keeping a
    # failed range unfiltered only leaves redundant (absorbable) tuples
    # in the union, never changes the represented set — so a dropped
    # shard here keeps the whole range instead of losing tuples
    results = _run(
        "absorb", ctx, absorb_shard, payloads, ranges,
        degraded=lambda p: (list(range(p[1], p[2])), 0.0),
    )
    wall = time.perf_counter() - t0
    merge0 = time.perf_counter()
    kept: List = []
    worker_seconds = 0.0
    for result in results:
        if result is None:  # shard dropped under on_failure="partial"
            continue
        indices, seconds = result
        kept.extend(distinct[i] for i in indices)
        worker_seconds += seconds
    merge_seconds = time.perf_counter() - merge0
    _emit("absorb", ranges, ctx, wall, worker_seconds, merge_seconds)
    return kept, _dispatch_info(ctx, ranges)
