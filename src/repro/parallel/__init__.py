"""Opt-in sharded parallel evaluation (see DESIGN.md section 2.12).

The relation algebra's expensive per-tuple kernels — join partner
matching, quantifier elimination, absorption — decompose over the
tuples of a generalized relation, because a relation is the union of
its tuples.  An active :class:`ExecutionContext` makes ``Relation``
shard those kernels across a worker pool and merge the results; serial
evaluation stays the default and the reference semantics.

Shard dispatch is fault-tolerant (see DESIGN.md section 2.13): every
batch runs under a :class:`ResiliencePolicy` — per-shard deadlines,
bounded retries with seeded-jitter backoff, worker-crash recovery that
re-dispatches only the unfinished shards, and serial quarantine for
poisoned shards — raising :class:`~repro.errors.ShardFailedError` only
when every recovery path the policy allows is exhausted.

Only the context machinery is imported eagerly (it is stdlib-only, so
:mod:`repro.core.relation` can depend on it without a cycle); the
shard/merge drivers load lazily at the algebra hooks.
"""

from repro.errors import ShardFailedError
from repro.parallel.context import ExecutionContext, active_execution_context

__all__ = [
    "ExecutionContext",
    "active_execution_context",
    "ResiliencePolicy",
    "BatchReport",
    "DEFAULT_POLICY",
    "ShardFailedError",
]

_LAZY = ("ResiliencePolicy", "BatchReport", "DEFAULT_POLICY")


def __getattr__(name):
    # lazy: resilience pulls in the shard kernels, which import
    # repro.core.relation — eager here would close an import cycle
    # (core.relation -> parallel.context -> this package __init__)
    if name in _LAZY:
        from repro.parallel import resilience

        return getattr(resilience, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
