"""Opt-in sharded parallel evaluation (see DESIGN.md section 2.12).

The relation algebra's expensive per-tuple kernels — join partner
matching, quantifier elimination, absorption — decompose over the
tuples of a generalized relation, because a relation is the union of
its tuples.  An active :class:`ExecutionContext` makes ``Relation``
shard those kernels across a worker pool and merge the results; serial
evaluation stays the default and the reference semantics.

Only the context machinery is imported eagerly (it is stdlib-only, so
:mod:`repro.core.relation` can depend on it without a cycle); the
shard/merge drivers load lazily at the algebra hooks.
"""

from repro.parallel.context import ExecutionContext, active_execution_context

__all__ = ["ExecutionContext", "active_execution_context"]
