"""Fault-tolerant shard dispatch: retries, deadlines, crash recovery.

The PR-5 dispatch loop treated any worker failure as fatal to the
whole query; this module makes a lost, hung, or poisoned shard degrade
a query instead of killing it.  Every shard batch a
:class:`~repro.parallel.context.ExecutionContext` runs goes through
:func:`dispatch_shards`, which drives a per-shard state machine::

    dispatched ──ok──────────────────────────────▶ merged
        │
        ├─ deadline exceeded ─┐
        ├─ shard error ───────┤ attempts ≤ max_retries: backoff, retry
        │                     └ attempts >  max_retries: quarantine
        │
        └─ pool died (BrokenProcessPool / unpicklable) ─▶ restart pool
           or degrade to threads; re-dispatch ONLY the unfinished
           shards (completed results are kept, never recomputed)

    quarantine: re-execute the shard serially in-process
        ├─ ok ───────────────────────────────────▶ merged
        └─ fails again (a truly poisoned shard):
             on_failure="fail"/"serial" ▶ raise ShardFailedError
             on_failure="partial"       ▶ drop the shard's output
                                          (or a semantically exact
                                          degraded fallback when the
                                          operation has one) and tag
                                          the context as partial

Retry backoff is exponential with *deterministic seeded jitter*: one
``random.Random`` per batch, seeded from the policy (or, when a
:class:`~repro.runtime.faults.FaultRegistry` is active, from its seed),
so a fixed chaos seed reproduces the exact retry schedule.  Backoff
waits go through :meth:`EvaluationGuard.wait` when a guard is active,
so deadlines and cancellation keep binding between attempts.

Telemetry crosses the process boundary here too: when the dispatching
process has a tracer active (and the context's ``capture`` flag is
on), shards run through :func:`~repro.parallel.worker.run_shard` in
capture mode and come back as
:class:`~repro.parallel.worker.ShardEnvelope` objects; every harvest
site — first-try results, retried attempts, shards rescued from a
dying pool, and quarantined re-runs — unwraps the envelope and
stitches the worker telemetry into the parent tracer
(:mod:`repro.obs.stitch`) with ``shard`` / ``attempt`` /
``quarantined`` provenance, so the stitched trace covers exactly the
attempts that produced the merged results.

Recovery preserves the PR-5 invariants: shard kernels are pure
functions of their payloads, so a retried, re-pooled, or quarantined
shard returns the same value as a first-try shard, the merge is
byte-identical to serial, and guard-counter parity survives any
injected failure the loop recovers from.  Every recovery decision is
counted on the context (``retries`` / ``deadline_exceeded`` /
``quarantined`` / ``dropped_shards`` / ``pool_restarts``), emitted as
``parallel.*`` metrics by the backend drivers, and logged as
warning-level ``repro.log/1`` records.
"""

from __future__ import annotations

import pickle
import random
import time
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.errors import ShardFailedError
from repro.obs.log import log_event
from repro.obs.stitch import stitch_telemetry
from repro.obs.trace import active_tracer
from repro.runtime.faults import active_fault_registry
from repro.runtime.guard import active_guard
from repro.parallel.worker import (
    ShardEnvelope,
    run_quarantined,
    run_shard,
    shard_site,
)

__all__ = ["ResiliencePolicy", "BatchReport", "dispatch_shards", "DEFAULT_POLICY"]

#: accepted terminal behaviors for a shard that failed quarantine
ON_FAILURE = ("fail", "serial", "partial")

#: exceptions that mean the *pool* broke, not the shard's computation
_POOL_ERRORS = (BrokenProcessPool, OSError, EOFError)
#: exceptions that mean the payload/result cannot cross the process
#: boundary at all — retrying the same pool kind cannot help
_PICKLE_ERRORS = (pickle.PicklingError, AttributeError, TypeError)


@dataclass(frozen=True)
class ResiliencePolicy:
    """How hard a context fights for each shard before giving up.

    ``shard_timeout``     per-shard deadline in seconds (``None`` = no
                          deadline); clipped to the active guard's
                          remaining budget deadline when one is set;
    ``max_retries``       pool re-dispatches per shard after the first
                          attempt, before quarantine;
    ``backoff_base``      first retry delay in seconds;
    ``backoff_factor``    multiplier per retry round;
    ``backoff_max``       delay ceiling;
    ``jitter_seed``       seed for the deterministic backoff jitter
                          (``None``: inherit the active
                          :class:`FaultRegistry` seed, or 0);
    ``on_failure``        terminal behavior after quarantine fails:
                          ``"fail"`` raise :class:`ShardFailedError`
                          *without* quarantining, ``"serial"`` (default)
                          quarantine then raise, ``"partial"``
                          quarantine then drop the shard;
    ``max_pool_restarts`` fresh process pools per batch after crashes,
                          before degrading to the thread fallback.
    """

    shard_timeout: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.02
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    jitter_seed: Optional[int] = None
    on_failure: str = "serial"
    max_pool_restarts: int = 2

    def __post_init__(self) -> None:
        if self.on_failure not in ON_FAILURE:
            raise ValueError(
                f"on_failure must be one of {ON_FAILURE}, got {self.on_failure!r}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive")
        if self.max_pool_restarts < 0:
            raise ValueError("max_pool_restarts must be >= 0")


#: the default: no deadline, two retries, quarantine before failing
DEFAULT_POLICY = ResiliencePolicy()


class BatchReport:
    """Recovery accounting for one shard batch (one ``run_shards``).

    ``worker_cache_hits`` / ``worker_cache_misses`` accumulate the
    stitched ``kernel.*`` deltas of the batch's *cross-process*
    shards (zero for thread pools, where the parent's process-wide
    counters already saw the traffic) — the backend drivers fold them
    into the cost ledger's per-call cache attribution.
    """

    __slots__ = ("retries", "deadline_exceeded", "quarantined", "dropped",
                 "pool_restarts", "worker_cache_hits", "worker_cache_misses")

    def __init__(self) -> None:
        self.retries = 0
        self.deadline_exceeded = 0
        self.quarantined = 0
        self.dropped = 0
        self.pool_restarts = 0
        self.worker_cache_hits = 0
        self.worker_cache_misses = 0

    def as_dict(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}


def _jitter_rng(policy: ResiliencePolicy) -> random.Random:
    seed = policy.jitter_seed
    if seed is None:
        registry = active_fault_registry()
        seed = registry.seed if registry is not None else 0
    return random.Random(seed)


def _backoff_delay(policy: ResiliencePolicy, round_index: int,
                   rng: random.Random) -> float:
    """Exponential delay for retry round ``round_index`` (0-based),
    jittered into [0.5, 1.0] of the nominal value — deterministic for a
    fixed seed, desynchronized between differently-seeded runs."""
    nominal = min(policy.backoff_max,
                  policy.backoff_base * policy.backoff_factor ** round_index)
    return nominal * (0.5 + 0.5 * rng.random())


def _sleep(seconds: float, guard) -> None:
    if seconds <= 0:
        return
    if guard is not None:
        guard.wait(seconds, "parallel.backoff")
    else:
        time.sleep(seconds)


def _effective_timeout(policy: ResiliencePolicy, guard) -> Optional[float]:
    """The per-shard deadline, clipped by the guard's remaining budget
    deadline so a shard can never be granted more time than the query
    has left."""
    timeout = policy.shard_timeout
    if guard is not None:
        remaining = guard.remaining_seconds()
        if remaining is not None and (timeout is None or remaining < timeout):
            timeout = max(remaining, 0.001)
    return timeout


def _chaos_spec() -> Optional[dict]:
    """The active registry's exported fault table, when it arms any
    ``worker.*`` site — ``None`` otherwise, so chaos-free runs ship
    bare kernel payloads with zero wrapping overhead."""
    registry = active_fault_registry()
    if registry is None:
        return None
    spec = registry.export_spec()
    if any(f["site"].startswith("worker.") for f in spec["faults"]):
        return spec
    return None


def dispatch_shards(
    ctx,
    fn: Callable,
    payloads: Sequence,
    degraded: Optional[Callable] = None,
) -> List:
    """Run ``fn`` over every payload with retry/deadline/crash recovery.

    Returns the per-shard results in payload order.  A shard dropped
    under ``on_failure="partial"`` yields ``degraded(payload)`` when
    the operation supplied a semantically exact fallback (absorption:
    keep the whole range unfiltered), else ``None`` — callers must
    skip ``None`` entries and treat the merge as a tagged partial
    result.  Raises :class:`ShardFailedError` when a shard exhausts
    every recovery path and the policy forbids partial results.

    The recovery accounting for the batch lands in ``ctx.last_report``
    (a :class:`BatchReport`) and is accumulated onto the context's
    lifetime counters.
    """
    policy: ResiliencePolicy = ctx.resilience or DEFAULT_POLICY
    report = BatchReport()
    ctx.last_report = report
    guard = active_guard()
    rng = _jitter_rng(policy)
    spec = _chaos_spec()
    # worker telemetry capture: only when someone is watching AND the
    # context allows it — with neither chaos nor capture in play the
    # payloads ship bare, keeping the no-telemetry path byte-identical
    # to the pre-stitching dispatch (the E19 off-switch gate)
    tracer = active_tracer()
    capture = tracer is not None and getattr(ctx, "capture", True)
    memory = getattr(ctx, "memory", None) if capture else None

    results: List = [None] * len(payloads)
    attempts = [0] * len(payloads)
    pending = list(range(len(payloads)))
    round_index = 0

    def submit(executor, i):
        if spec is not None or capture:
            return executor.submit(
                run_shard, (spec, fn, payloads[i], capture, memory)
            )
        return executor.submit(fn, payloads[i])

    def land(i, raw):
        """Unwrap a shard result, stitching any telemetry envelope
        into the parent tracer under the currently open span."""
        if not isinstance(raw, ShardEnvelope):
            return raw
        delta = stitch_telemetry(
            tracer, raw.telemetry, shard=i, attempt=attempts[i] + 1,
        )
        report.worker_cache_hits += delta.get("cache.hits", 0)
        report.worker_cache_misses += delta.get("cache.misses", 0)
        return raw.result

    while pending:
        executor = ctx._ensure_executor()
        is_process = ctx.pool_kind == "process"
        retry: List[int] = []
        quarantine: List[int] = []
        infra: List[int] = []
        pool_broken = pickle_broken = False
        futures = []
        for i in pending:
            if pool_broken:
                infra.append(i)
                continue
            try:
                futures.append((i, submit(executor, i)))
            except _POOL_ERRORS:
                if not is_process:
                    raise
                # the pool broke before this batch (e.g. a worker
                # crashed after delivering the previous batch's
                # results): route the whole batch through the same
                # restart/degrade machinery as a mid-batch break
                pool_broken = True
                infra.append(i)
        timeout = _effective_timeout(policy, guard)
        deadline = None if timeout is None else time.monotonic() + timeout
        for i, future in futures:
            if pool_broken or pickle_broken:
                # the pool is gone: harvest shards that finished before
                # it died; everything still in flight is
                # infrastructure-failed, not shard-failed
                if future.done():
                    try:
                        results[i] = land(i, future.result(timeout=0))
                        continue
                    except Exception:
                        pass
                future.cancel()
                infra.append(i)
                continue
            try:
                remaining = (None if deadline is None
                             else max(0.0, deadline - time.monotonic()))
                results[i] = land(i, future.result(timeout=remaining))
                continue
            except FuturesTimeoutError:
                future.cancel()
                report.deadline_exceeded += 1
                ctx.deadline_exceeded += 1
                log_event(
                    "parallel.shard_deadline_exceeded", level="warning",
                    op=fn.__name__, shard=i, attempt=attempts[i] + 1,
                    timeout=timeout,
                )
                failure: Optional[BaseException] = None
            except _POOL_ERRORS as error:
                if not is_process:
                    failure = error  # a thread raised it: shard-level
                else:
                    pool_broken = True
                    infra.append(i)
                    continue
            except _PICKLE_ERRORS as error:
                if not is_process:
                    failure = error
                else:
                    pickle_broken = True
                    infra.append(i)
                    continue
            except Exception as error:  # shard-level failure
                failure = error
            attempts[i] += 1
            if failure is not None:
                log_event(
                    "parallel.shard_error", level="warning",
                    op=fn.__name__, shard=i, attempt=attempts[i],
                    error=type(failure).__name__,
                )
            if attempts[i] <= policy.max_retries:
                retry.append(i)
            elif policy.on_failure == "fail":
                raise ShardFailedError(
                    f"shard {i} of {fn.__name__} failed "
                    f"{attempts[i]} attempt(s) and the policy forbids "
                    f"quarantine (on_failure='fail')",
                    op=fn.__name__, shard=i, attempts=attempts[i],
                    cause=failure,
                )
            else:
                quarantine.append(i)

        if pool_broken:
            if report.pool_restarts < policy.max_pool_restarts:
                report.pool_restarts += 1
                ctx.pool_restarts += 1
                ctx._restart_pool()
                log_event(
                    "parallel.pool_restart", level="warning",
                    op=fn.__name__, shards=len(infra),
                    restarts=report.pool_restarts,
                )
            else:
                ctx._degrade_to_threads()
                log_event(
                    "parallel.pool_fallback", level="warning",
                    op=fn.__name__, shards=len(infra),
                )
        elif pickle_broken:
            ctx._degrade_to_threads()
            log_event(
                "parallel.pool_fallback", level="warning",
                op=fn.__name__, shards=len(infra), reason="unpicklable",
            )

        for i in quarantine:
            report.quarantined += 1
            ctx.quarantined += 1
            log_event(
                "parallel.shard_quarantined", level="warning",
                op=fn.__name__, shard=i, attempts=attempts[i],
            )
            try:
                raw = run_quarantined(
                    fn, payloads[i], capture=capture, memory=memory
                )
                if isinstance(raw, ShardEnvelope):
                    # a quarantined re-run is the shard's final attempt;
                    # same-process, so the kernel delta is empty and the
                    # graft carries the quarantined marker
                    stitch_telemetry(
                        tracer, raw.telemetry, shard=i,
                        attempt=attempts[i] + 1, quarantined=True,
                    )
                    raw = raw.result
                results[i] = raw
            except Exception as error:
                if policy.on_failure != "partial":
                    raise ShardFailedError(
                        f"shard {i} of {fn.__name__} failed "
                        f"{attempts[i]} pool attempt(s) and its serial "
                        f"quarantine re-execution",
                        op=fn.__name__, shard=i, attempts=attempts[i],
                        cause=error,
                    ) from error
                results[i] = degraded(payloads[i]) if degraded is not None else None
                if degraded is None:
                    report.dropped += 1
                    ctx.dropped_shards += 1
                log_event(
                    "parallel.shard_dropped", level="warning",
                    op=fn.__name__, shard=i, attempts=attempts[i],
                    error=type(error).__name__,
                    degraded=degraded is not None,
                )

        if retry:
            report.retries += len(retry)
            ctx.retries += len(retry)
            _sleep(_backoff_delay(policy, round_index, rng), guard)
            round_index += 1

        pending = sorted(infra + retry)

    return results
