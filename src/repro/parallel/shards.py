"""Semantics-preserving partitioners for generalized-tuple sets.

A generalized relation is the *union* of its generalized tuples (paper
Section 2): the denoted pointset is the disjunction of the per-tuple
conjunctions.  Union is associative and commutative, so **any**
partition of the tuple set evaluates correctly shard-by-shard for the
tuple-local kernels (join partner matching, per-tuple quantifier
elimination) — the merged result denotes the same pointset as the
serial pass.  The strategies below only differ in *balance* and
*locality*:

``hash``
    Shard by a stable digest of the tuple's canonical form.  Spreads
    tuples uniformly; the digest is :func:`zlib.crc32` over the schema
    and the sorted atom renderings, never Python's salted ``hash()``,
    so the same input shards identically across processes and runs
    (``PYTHONHASHSEED`` independence is load-bearing: worker processes
    may have a different seed than the parent).

``cell``
    Shard by the canonical cell decomposition (paper Section 3/5): the
    constants of the input induce a partition of Q into cells, and a
    tuple is keyed by the cells its sample point occupies.  Tuples
    constraining the same region of Q^k land in the same shard, which
    keeps would-be join partners and absorption candidates together.
    Falls back to ``hash`` for theories without the dense-order cell
    machinery.
"""

from __future__ import annotations

import zlib
from typing import List, Sequence

__all__ = [
    "stable_digest",
    "shard_indices",
    "index_ranges",
    "shard_skew",
]


def stable_digest(t) -> int:
    """A process-stable digest of a generalized tuple's canonical form.

    crc32 over the schema plus the sorted atom renderings: equal tuples
    digest equally in every process regardless of hash salting.
    """
    parts = [",".join(t.schema)]
    parts.extend(sorted(str(a) for a in t.atoms))
    return zlib.crc32("|".join(parts).encode("utf-8"))


def _hash_keys(tuples: Sequence) -> List[int]:
    return [stable_digest(t) for t in tuples]


def _cell_keys(tuples: Sequence) -> List[int]:
    """Cell-aligned shard keys; hash keys for non-dense theories."""
    from repro.core.theory import DenseOrderTheory

    if not tuples or not isinstance(tuples[0].theory, DenseOrderTheory):
        return _hash_keys(tuples)
    from repro.encoding.cells import CellDecomposition

    constants: set = set()
    for t in tuples:
        constants |= t.constants()
    decomposition = CellDecomposition(constants)
    keys: List[int] = []
    for t in tuples:
        point = t.sample_point()
        label = ",".join(
            str(decomposition.cell_of_value(point[column])) for column in t.schema
        )
        keys.append(zlib.crc32(label.encode("utf-8")))
    return keys


def shard_indices(tuples: Sequence, n: int, strategy: str) -> List[List[int]]:
    """Partition ``range(len(tuples))`` into at most ``n`` shards.

    Every index appears in exactly one shard; empty shards are dropped.
    Within a shard, indices keep the input order (merges that
    concatenate shard outputs stay deterministic).
    """
    n = max(1, min(n, len(tuples)))
    if strategy == "cell":
        keys = _cell_keys(tuples)
    elif strategy == "hash":
        keys = _hash_keys(tuples)
    else:
        raise ValueError(f"unknown shard strategy {strategy!r}")
    shards: List[List[int]] = [[] for _ in range(n)]
    for i, key in enumerate(keys):
        shards[key % n].append(i)
    return [s for s in shards if s]


def index_ranges(total: int, n: int) -> List[range]:
    """Split ``range(total)`` into at most ``n`` contiguous ranges.

    Used where the merge must preserve the exact serial order (the
    absorption pass keeps survivors in input order): contiguous ranges
    concatenated in order are index order.
    """
    n = max(1, min(n, total))
    base, extra = divmod(total, n)
    out: List[range] = []
    start = 0
    for i in range(n):
        stop = start + base + (1 if i < extra else 0)
        if stop > start:
            out.append(range(start, stop))
        start = stop
    return out


def shard_skew(shards: Sequence[Sequence]) -> float:
    """Largest shard over the mean shard size (1.0 = perfectly even)."""
    sizes = [len(s) for s in shards if len(s)]
    if not sizes:
        return 1.0
    return max(sizes) / (sum(sizes) / len(sizes))
