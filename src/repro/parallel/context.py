"""Opt-in parallel execution contexts for the relation algebra.

An :class:`ExecutionContext` owns a :mod:`concurrent.futures` worker
pool and the sharding policy (worker count, shard strategy, minimum
shardable size).  Activation mirrors :class:`EvaluationGuard`: the FO
evaluator and the Datalog engines activate a context (``with ctx:``)
around a run, and :func:`active_execution_context` hands it to
``Relation.join`` / ``project`` / ``simplify`` without widening the
algebra signatures.  Serial evaluation remains the default and the
reference: with no context active the cost at each hook is a single
context-variable read.

Pools: ``"process"`` fans shards out to a
:class:`~concurrent.futures.ProcessPoolExecutor` (shard payloads are
picklable by construction; see :mod:`repro.parallel.worker`),
``"thread"`` to a :class:`~concurrent.futures.ThreadPoolExecutor`, and
``"auto"`` picks processes when more than one worker was requested.
A process pool that cannot start, or that breaks mid-run, degrades to
threads — the run completes either way and the degradation is counted
in :attr:`ExecutionContext.fallbacks`.

This module deliberately imports nothing from the rest of the package
(stdlib only), so :mod:`repro.core.relation` can import it at module
level without a cycle; the shard/merge machinery lives in
:mod:`repro.parallel.backend` and is imported lazily at the hooks.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextvars import ContextVar
from typing import Callable, List, Optional, Sequence

__all__ = ["ExecutionContext", "active_execution_context"]

#: accepted shard strategies (see :mod:`repro.parallel.shards`)
SHARD_STRATEGIES = ("hash", "cell")
#: accepted pool kinds ("auto" resolves at construction)
POOL_KINDS = ("auto", "process", "thread")

_ACTIVE: ContextVar[Optional["ExecutionContext"]] = ContextVar(
    "repro_active_execution_context", default=None
)


def active_execution_context() -> Optional["ExecutionContext"]:
    """The innermost context activated *in this process*, or ``None``.

    Worker processes forked by a process pool inherit the parent's
    context variables; the owner-pid check makes the inherited context
    invisible there, so shard kernels never re-parallelize recursively.
    """
    ctx = _ACTIVE.get()
    if ctx is None or ctx._owner_pid != os.getpid() or ctx.closed:
        return None
    return ctx


class ExecutionContext:
    """Sharding policy plus a lazily created worker pool.

    ``workers``: pool size (default: the machine's CPU count).
    ``shard_strategy``: ``"hash"`` (stable digest of the canonical
    form) or ``"cell"`` (cell-aligned; see
    :mod:`repro.parallel.shards`).
    ``pool``: ``"auto"`` / ``"process"`` / ``"thread"``.
    ``min_tuples``: inputs smaller than this stay on the serial path
    (sharding a tiny relation costs more than it saves).

    The executor is created on first use and reused across
    activations; call :meth:`close` (or use the context as an argument
    to ``contextlib.closing``) when done with it.
    """

    __slots__ = (
        "workers",
        "shard_strategy",
        "pool",
        "min_tuples",
        "fallbacks",
        "batches",
        "closed",
        "_pool_kind",
        "_executor",
        "_owner_pid",
        "_tokens",
    )

    def __init__(
        self,
        workers: Optional[int] = None,
        shard_strategy: str = "hash",
        pool: str = "auto",
        min_tuples: int = 8,
    ) -> None:
        if shard_strategy not in SHARD_STRATEGIES:
            raise ValueError(
                f"shard_strategy must be one of {SHARD_STRATEGIES}, "
                f"got {shard_strategy!r}"
            )
        if pool not in POOL_KINDS:
            raise ValueError(f"pool must be one of {POOL_KINDS}, got {pool!r}")
        self.workers = int(workers) if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.shard_strategy = shard_strategy
        self.pool = pool
        self.min_tuples = int(min_tuples)
        self.fallbacks = 0  #: process-pool degradations to threads
        self.batches = 0  #: shard batches dispatched to the pool
        self.closed = False
        self._pool_kind = (
            pool if pool != "auto" else ("process" if self.workers > 1 else "thread")
        )
        self._executor = None
        self._owner_pid = os.getpid()
        self._tokens: list = []

    # ------------------------------------------------------------ activation

    def __enter__(self) -> "ExecutionContext":
        self._tokens.append(_ACTIVE.set(self))
        return self

    def __exit__(self, exc_type=None, exc=None, tb=None) -> None:
        _ACTIVE.reset(self._tokens.pop())

    # -------------------------------------------------------------- policy

    def eligible(self, size: int) -> bool:
        """Is an input of ``size`` tuples worth sharding?"""
        return size >= self.min_tuples

    @property
    def pool_kind(self) -> str:
        """The resolved pool kind ("process" or "thread")."""
        return self._pool_kind

    def stats(self) -> dict:
        return {
            "workers": self.workers,
            "shard_strategy": self.shard_strategy,
            "pool": self._pool_kind,
            "batches": self.batches,
            "fallbacks": self.fallbacks,
        }

    # ------------------------------------------------------------ execution

    def _ensure_executor(self):
        if self.closed:
            raise RuntimeError("ExecutionContext is closed")
        if self._executor is None:
            if self._pool_kind == "process":
                try:
                    self._executor = ProcessPoolExecutor(max_workers=self.workers)
                except (OSError, ValueError):
                    self._degrade_to_threads()
            if self._executor is None:
                self._executor = ThreadPoolExecutor(max_workers=self.workers)
        return self._executor

    def _degrade_to_threads(self) -> None:
        self.fallbacks += 1
        if self._executor is not None:
            self._executor.shutdown(wait=False)
        self._pool_kind = "thread"
        self._executor = None

    def run_shards(self, fn: Callable, payloads: Sequence) -> List:
        """Run ``fn`` over every payload on the pool, results in order.

        On a process pool, an unpicklable payload/result or a broken
        pool degrades the context to threads and re-runs the whole
        batch there — shard kernels are pure functions of their
        payload, so a re-run is safe.
        """
        if not payloads:
            return []
        self.batches += 1
        executor = self._ensure_executor()
        if self._pool_kind == "process":
            try:
                return list(executor.map(fn, payloads))
            except (pickle.PicklingError, AttributeError, TypeError,
                    BrokenProcessPool, OSError):
                self._degrade_to_threads()
                executor = self._ensure_executor()
        return list(executor.map(fn, payloads))

    def close(self) -> None:
        """Shut the worker pool down; the context cannot be reused."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self.closed = True

    def __repr__(self) -> str:
        return (
            f"<ExecutionContext workers={self.workers} "
            f"strategy={self.shard_strategy} pool={self._pool_kind}"
            f"{' closed' if self.closed else ''}>"
        )
