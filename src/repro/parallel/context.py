"""Opt-in parallel execution contexts for the relation algebra.

An :class:`ExecutionContext` owns a :mod:`concurrent.futures` worker
pool, the sharding policy (worker count, shard strategy, minimum
shardable size), and the resilience policy (per-shard deadlines,
bounded retries with seeded-jitter backoff, quarantine — see
:mod:`repro.parallel.resilience`).  Activation mirrors
:class:`EvaluationGuard`: the FO evaluator and the Datalog engines
activate a context (``with ctx:``) around a run, and
:func:`active_execution_context` hands it to ``Relation.join`` /
``project`` / ``simplify`` without widening the algebra signatures.
Serial evaluation remains the default and the reference: with no
context active the cost at each hook is a single context-variable
read.

Pools: ``"process"`` fans shards out to a
:class:`~concurrent.futures.ProcessPoolExecutor` (shard payloads are
picklable by construction; see :mod:`repro.parallel.worker`),
``"thread"`` to a :class:`~concurrent.futures.ThreadPoolExecutor`, and
``"auto"`` picks processes when more than one worker was requested.
A process pool that cannot start degrades to threads; one that breaks
mid-run (a crashed worker) is *restarted* and only the unfinished
shards are re-dispatched, degrading to threads only when restarts are
exhausted.  Either way the run completes: degradations are counted in
:attr:`ExecutionContext.fallbacks` and restarts in
:attr:`ExecutionContext.pool_restarts`.

This module deliberately imports nothing from the rest of the package
(stdlib only), so :mod:`repro.core.relation` can import it at module
level without a cycle; the shard/merge machinery lives in
:mod:`repro.parallel.backend` and the retry/recovery loop in
:mod:`repro.parallel.resilience`, both imported lazily at the hooks.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextvars import ContextVar
from typing import Callable, List, Optional, Sequence

__all__ = ["ExecutionContext", "active_execution_context"]

#: accepted shard strategies (see :mod:`repro.parallel.shards`)
SHARD_STRATEGIES = ("hash", "cell")
#: accepted pool kinds ("auto" resolves at construction)
POOL_KINDS = ("auto", "process", "thread")
#: accepted worker memory-attribution backends (mirrors
#: ``repro.obs.memory.BACKENDS``; duplicated so this module stays
#: stdlib-only — a unit test pins the two tuples equal)
MEMORY_BACKENDS = ("rss", "tracemalloc")

_ACTIVE: ContextVar[Optional["ExecutionContext"]] = ContextVar(
    "repro_active_execution_context", default=None
)


def active_execution_context() -> Optional["ExecutionContext"]:
    """The innermost context activated *in this process*, or ``None``.

    Worker processes forked by a process pool inherit the parent's
    context variables; the owner-pid check makes the inherited context
    invisible there, so shard kernels never re-parallelize recursively.
    """
    ctx = _ACTIVE.get()
    if ctx is None or ctx._owner_pid != os.getpid() or ctx.closed:
        return None
    return ctx


class ExecutionContext:
    """Sharding + resilience policy plus a lazily created worker pool.

    ``workers``: pool size (default: the machine's CPU count).
    ``shard_strategy``: ``"hash"`` (stable digest of the canonical
    form) or ``"cell"`` (cell-aligned; see
    :mod:`repro.parallel.shards`).
    ``pool``: ``"auto"`` / ``"process"`` / ``"thread"``.
    ``min_tuples``: inputs smaller than this stay on the serial path
    (sharding a tiny relation costs more than it saves).
    ``resilience``: a :class:`~repro.parallel.resilience.ResiliencePolicy`
    (``None``: the default — no per-shard deadline, two retries,
    quarantine before failing).
    ``capture``: allow worker-side telemetry capture + cross-process
    trace stitching when a tracer is active in the dispatching
    process (default on; the capture only happens under a tracer, so
    untraced runs never pay for it — ``capture=False`` is the
    explicit off-switch the E19 benchmark gates).
    ``memory``: a memory-attribution backend name (``"rss"`` /
    ``"tracemalloc"``) to arm on the in-worker tracer of captured
    shards, so stitched worker spans carry memory attrs like parent
    spans do (``None``, the default, costs workers nothing).

    The executor is created on first use and reused across
    activations; call :meth:`close` (or use the context as an argument
    to ``contextlib.closing``) when done with it.
    """

    __slots__ = (
        "workers",
        "shard_strategy",
        "pool",
        "min_tuples",
        "resilience",
        "capture",
        "memory",
        "fallbacks",
        "batches",
        "retries",
        "deadline_exceeded",
        "quarantined",
        "dropped_shards",
        "pool_restarts",
        "last_report",
        "closed",
        "_pool_kind",
        "_executor",
        "_retired",
        "_owner_pid",
        "_tokens",
    )

    def __init__(
        self,
        workers: Optional[int] = None,
        shard_strategy: str = "hash",
        pool: str = "auto",
        min_tuples: int = 8,
        resilience=None,
        capture: bool = True,
        memory: Optional[str] = None,
    ) -> None:
        if memory is not None and memory not in MEMORY_BACKENDS:
            raise ValueError(
                f"memory must be one of {MEMORY_BACKENDS} or None, "
                f"got {memory!r}"
            )
        if shard_strategy not in SHARD_STRATEGIES:
            raise ValueError(
                f"shard_strategy must be one of {SHARD_STRATEGIES}, "
                f"got {shard_strategy!r}"
            )
        if pool not in POOL_KINDS:
            raise ValueError(f"pool must be one of {POOL_KINDS}, got {pool!r}")
        self.workers = int(workers) if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.shard_strategy = shard_strategy
        self.pool = pool
        self.min_tuples = int(min_tuples)
        self.resilience = resilience  # opaque here; resolved at dispatch
        self.capture = bool(capture)
        self.memory = memory
        self.fallbacks = 0  #: process-pool degradations to threads
        self.batches = 0  #: shard batches dispatched to the pool
        self.retries = 0  #: shard re-dispatches after failures/timeouts
        self.deadline_exceeded = 0  #: shards past their per-shard deadline
        self.quarantined = 0  #: shards re-executed serially in-process
        self.dropped_shards = 0  #: shards abandoned under on_failure="partial"
        self.pool_restarts = 0  #: fresh process pools after worker crashes
        self.last_report = None  #: BatchReport of the newest batch
        self.closed = False
        self._pool_kind = (
            pool if pool != "auto" else ("process" if self.workers > 1 else "thread")
        )
        self._executor = None
        self._retired: list = []
        self._owner_pid = os.getpid()
        self._tokens: list = []

    # ------------------------------------------------------------ activation

    def __enter__(self) -> "ExecutionContext":
        self._tokens.append(_ACTIVE.set(self))
        return self

    def __exit__(self, exc_type=None, exc=None, tb=None) -> None:
        _ACTIVE.reset(self._tokens.pop())

    # -------------------------------------------------------------- policy

    def eligible(self, size: int) -> bool:
        """Is an input of ``size`` tuples worth sharding?"""
        return size >= self.min_tuples

    @property
    def pool_kind(self) -> str:
        """The resolved pool kind ("process" or "thread")."""
        return self._pool_kind

    @property
    def is_partial(self) -> bool:
        """Did any batch drop a shard (result is a sound subset)?"""
        return self.dropped_shards > 0

    def stats(self) -> dict:
        stats = {
            "workers": self.workers,
            "shard_strategy": self.shard_strategy,
            "pool": self._pool_kind,
            "capture": self.capture,
            "memory": self.memory,
            "batches": self.batches,
            "fallbacks": self.fallbacks,
            "retries": self.retries,
            "deadline_exceeded": self.deadline_exceeded,
            "quarantined": self.quarantined,
            "dropped_shards": self.dropped_shards,
            "pool_restarts": self.pool_restarts,
        }
        if self.resilience is not None:
            stats["resilience"] = {
                "shard_timeout": self.resilience.shard_timeout,
                "max_retries": self.resilience.max_retries,
                "on_failure": self.resilience.on_failure,
            }
        return stats

    # ------------------------------------------------------------ execution

    def _ensure_executor(self):
        if self.closed:
            raise RuntimeError("ExecutionContext is closed")
        if self._executor is None:
            if self._pool_kind == "process":
                try:
                    self._executor = ProcessPoolExecutor(max_workers=self.workers)
                except (OSError, ValueError):
                    self._degrade_to_threads()
            if self._executor is None:
                self._executor = ThreadPoolExecutor(max_workers=self.workers)
        return self._executor

    def _retire_executor(self) -> None:
        """Shut the current executor down without waiting, but keep a
        strong reference to it until :meth:`close`.

        The reference is deliberate, not a leak: a process pool forks
        workers that inherit the parent's heap, and a retired executor
        left to the garbage collector would be collected *inside those
        children* too — running ``concurrent.futures``' executor
        weakref callback there, which takes a shutdown lock the fork
        may have copied in the held state (a deadlock observed under
        crash-fault chaos).  Pinning the object means the callback
        never fires in a worker; the handful of retired executors per
        query (bounded by restarts + fallbacks) is released at close.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._retired.append(self._executor)
        self._executor = None

    def _degrade_to_threads(self) -> None:
        self.fallbacks += 1
        self._retire_executor()
        self._pool_kind = "thread"

    def _restart_pool(self) -> None:
        """Replace a broken process pool with a fresh one (same kind).

        Called by the resilient dispatch loop after a worker crash
        (``BrokenProcessPool``): completed shard results are kept and
        only the unfinished shards are re-dispatched to the new pool.
        """
        self._retire_executor()

    def run_shards(self, fn: Callable, payloads: Sequence,
                   degraded: Optional[Callable] = None) -> List:
        """Run ``fn`` over every payload on the pool, results in order.

        Dispatch is resilient (:mod:`repro.parallel.resilience`): each
        shard runs under the policy's per-shard deadline with bounded
        retry + seeded exponential backoff; a crashed worker restarts
        the pool and re-dispatches only the unfinished shards; a shard
        that fails every retry is quarantined (re-executed serially
        in-process).  ``degraded`` is an optional semantically exact
        per-payload fallback used instead of dropping a shard under
        ``on_failure="partial"`` (absorption passes one: keep the whole
        range).  Raises
        :class:`~repro.errors.ShardFailedError` when a shard exhausts
        every recovery path the policy allows.
        """
        if not payloads:
            return []
        self.batches += 1
        from repro.parallel.resilience import dispatch_shards

        return dispatch_shards(self, fn, payloads, degraded=degraded)

    def close(self) -> None:
        """Shut the worker pool down; the context cannot be reused."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._retired.clear()
        self.closed = True

    def __repr__(self) -> str:
        return (
            f"<ExecutionContext workers={self.workers} "
            f"strategy={self.shard_strategy} pool={self._pool_kind}"
            f"{' closed' if self.closed else ''}>"
        )
