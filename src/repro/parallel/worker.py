"""Picklable shard kernels, executed inside pool workers.

Each function here is a pure, module-level function of one payload
tuple — exactly what a :class:`~concurrent.futures.ProcessPoolExecutor`
can ship to a child process.  They replicate the inner loops of the
corresponding ``Relation`` operations **without** touching the guard,
tracer, fault-injection, or execution-context context variables:
budgets and metrics are the parent's job (the merge step replays the
serial-equivalent accounting; see :mod:`repro.parallel.backend`), and
a forked worker inheriting the parent's context variables must not
recurse into the parallel path or double-charge a budget.

Every kernel returns its own wall-clock seconds as the last element,
so the parent can report worker utilization without a second clock
source in the children.

Cross-process chaos: when a :class:`~repro.runtime.faults.FaultRegistry`
with faults armed at the ``worker.*`` sites is active in the parent,
the resilient dispatch loop wraps each shard in :func:`run_shard`,
which rehydrates the exported armed-fault table on the receiving side
(cached per process and registry epoch, so ``after``/``times``/seeded-
probability state accumulates across that worker's tasks) and fires
the kernel's ``worker.<kernel>`` site before running it.
:func:`run_quarantined` fires the same site against the parent's own
ambient registry, so the serial quarantine path is chaos-visible too.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from repro.core.relation import _absorb_survivors
from repro.runtime.faults import FaultRegistry, fault_point

__all__ = [
    "join_shard",
    "project_shard",
    "absorb_shard",
    "shard_site",
    "run_shard",
    "run_quarantined",
    "probe_fault_sequence",
]


def shard_site(fn) -> str:
    """The fault-point site name for a shard kernel."""
    return f"worker.{fn.__name__}"


# one rehydrated registry per (arming registry, epoch); a single slot
# suffices because one dispatch loop ships one spec at a time
_CACHED_KEY: Optional[tuple] = None
_CACHED_REGISTRY: Optional[FaultRegistry] = None


def _rehydrated(spec: Optional[dict]) -> Optional[FaultRegistry]:
    global _CACHED_KEY, _CACHED_REGISTRY
    if spec is None:
        return None
    key = tuple(spec["key"])
    if _CACHED_KEY != key:
        _CACHED_KEY = key
        _CACHED_REGISTRY = FaultRegistry.from_spec(spec)
    return _CACHED_REGISTRY


def run_shard(payload) -> object:
    """Worker-side entry point for chaos-wrapped shards.

    Payload: ``(spec, kernel, kernel_payload)`` where ``spec`` is an
    exported armed-fault table (or ``None``).  Rehydrates the faults,
    fires the kernel's ``worker.*`` site, then runs the kernel.  The
    rehydrated registry is cached per process, so its hit counters and
    seeded random stream persist across the tasks this worker runs —
    the same deterministic schedule semantics as the parent's registry.
    """
    spec, kernel, kernel_payload = payload
    registry = _rehydrated(spec)
    if registry is None:
        return kernel(kernel_payload)
    with registry:
        fault_point(shard_site(kernel))
        return kernel(kernel_payload)


def run_quarantined(fn, payload) -> object:
    """Serial in-process re-execution of a poisoned shard.

    Fires the kernel's ``worker.*`` site against the *ambient* (parent)
    registry — a deterministically poisoned shard stays poisoned here,
    which is what lets tests drive the quarantine-failure path — then
    runs the kernel on the caller's thread.
    """
    fault_point(shard_site(fn))
    return fn(payload)


def probe_fault_sequence(payload) -> List[Tuple[str, int, str]]:
    """Rehydrate ``spec`` fresh and fire ``site`` ``hits`` times.

    Payload: ``(spec, site, hits)``.  Returns the registry's log — the
    exact (site, hit, action) firing sequence.  Module-level and
    picklable, so the determinism tests can run it both in-process and
    inside a spawned worker and assert the sequences are identical for
    a fixed seed.  Errors raised by armed faults are recorded and
    swallowed (the probe observes the schedule, not the unwind).
    """
    spec, site, hits = payload
    registry = FaultRegistry.from_spec(spec)
    with registry:
        for _ in range(hits):
            try:
                fault_point(site)
            except Exception:
                pass
    return registry.log


def join_shard(payload) -> Tuple[list, int, float]:
    """Join one shard of left tuples against the full widened right side.

    Payload: ``(left, combined, wide_b, buckets, unpinned)`` where
    ``left`` is a sequence of ``(tuple, pin)`` pairs — ``pin`` is the
    constant the partition column is equated to (``None`` when the
    tuple is unpinned or no partition index applies) — and ``buckets``
    / ``unpinned`` are the right-side partition index (``buckets`` is
    ``None`` for the plain nested loop).  Mirrors ``Relation.join``'s
    pairing loop exactly, so the union of shard outputs is the serial
    output set.  Returns ``(merged_tuples, pairs_considered, seconds)``.
    """
    left, combined, wide_b, buckets, unpinned = payload
    t0 = time.perf_counter()
    out: List = []
    considered = 0
    nb = len(wide_b)
    for a, pin in left:
        wide_a = a.extend(combined)
        if buckets is None or pin is None:
            matches = range(nb)
        else:
            # preserve the nested loop's right-side order
            matches = sorted(buckets.get(pin, ()) + unpinned)
        for bi in matches:
            considered += 1
            merged = wide_a.merge(wide_b[bi], combined)
            if merged is not None:
                out.append(merged)
    return out, considered, time.perf_counter() - t0


def project_shard(payload) -> Tuple[list, List[int], float]:
    """Eliminate the victim columns from one shard of tuples.

    Payload: ``(tuples, victims, target)``.  Quantifier elimination is
    tuple-local, so each shard runs the full column-by-column pass on
    its own tuples; the per-column survivor counts are returned so the
    parent can replay the serial guard charges (summed across shards
    they equal the serial counts exactly).  Returns
    ``(reordered_tuples, per_column_survivors, seconds)``.
    """
    tuples, victims, target = payload
    t0 = time.perf_counter()
    current = list(tuples)
    counts: List[int] = []
    for column in victims:
        survivors: List = []
        for t in current:
            survivors.extend(t.project_out_all(column))
        current = survivors
        counts.append(len(survivors))
    out = [t.reorder(target) for t in current]
    return out, counts, time.perf_counter() - t0


def absorb_shard(payload) -> Tuple[List[int], float]:
    """Absorption survivors for one contiguous index range.

    Payload: ``(distinct, start, stop)`` — the **full** deduplicated
    tuple list plus the range this shard decides.  Survival of index
    ``i`` depends on the whole list (any tuple may subsume it) but not
    on other survival decisions, so disjoint ranges computed
    independently and concatenated in order reproduce the serial
    result byte-for-byte.  Returns ``(surviving_indices, seconds)``.
    """
    distinct, start, stop = payload
    t0 = time.perf_counter()
    kept = _absorb_survivors(distinct, start, stop)
    return kept, time.perf_counter() - t0
