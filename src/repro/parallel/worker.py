"""Picklable shard kernels, executed inside pool workers.

Each function here is a pure, module-level function of one payload
tuple — exactly what a :class:`~concurrent.futures.ProcessPoolExecutor`
can ship to a child process.  They replicate the inner loops of the
corresponding ``Relation`` operations **without** touching the guard,
tracer, fault-injection, or execution-context context variables:
budgets and metrics are the parent's job (the merge step replays the
serial-equivalent accounting; see :mod:`repro.parallel.backend`), and
a forked worker inheriting the parent's context variables must not
recurse into the parallel path or double-charge a budget.

Every kernel returns its own wall-clock seconds as the last element,
so the parent can report worker utilization without a second clock
source in the children.

Worker-side telemetry capture: when the dispatching process has a
tracer active, the resilient dispatch loop asks :func:`run_shard` for
*capture* mode — the shard runs under a lightweight in-worker
:class:`~repro.obs.trace.Tracer` (its own object, never the parent's
inherited one) whose spans, metric deltas (including the ``kernel.*``
cache counters), and ``repro.log/1`` records ride back to the parent
inside a :class:`ShardEnvelope` as a picklable
``repro.worker-telemetry/1`` snapshot.  The parent grafts the snapshot
into its own tracer at harvest time (:mod:`repro.obs.stitch`), so
``--trace`` / ``--stats`` / ``explain`` / the flight recorder finally
see inside the pool.  Guard and execution-context variables stay
untouched in workers: budgets and charge parity remain the parent's
job, exactly as before.

Cross-process chaos: when a :class:`~repro.runtime.faults.FaultRegistry`
with faults armed at the ``worker.*`` sites is active in the parent,
the resilient dispatch loop wraps each shard in :func:`run_shard`,
which rehydrates the exported armed-fault table on the receiving side
(cached per process and registry epoch, so ``after``/``times``/seeded-
probability state accumulates across that worker's tasks) and fires
the kernel's ``worker.<kernel>`` site before running it.
:func:`run_quarantined` fires the same site against the parent's own
ambient registry, so the serial quarantine path is chaos-visible too.
"""

from __future__ import annotations

import os
import time
from typing import List, Optional, Tuple

from repro.core.relation import _absorb_survivors
from repro.core.theory import DenseOrderTheory
from repro.perf.columnar import kernel_selector, merge_block
from repro.runtime.faults import FaultRegistry, fault_point

_KERNEL = kernel_selector()

__all__ = [
    "ShardEnvelope",
    "join_shard",
    "project_shard",
    "absorb_shard",
    "shard_site",
    "run_shard",
    "run_quarantined",
    "probe_fault_sequence",
]

#: span cap for one shard's in-worker tracer: a shard runs one kernel,
#: so this is pure blast-radius protection, not a tuning knob
_WORKER_MAX_SPANS = 2048


class ShardEnvelope:
    """A shard result plus its ``repro.worker-telemetry/1`` snapshot.

    The dispatch loop unwraps envelopes at harvest time (stitching the
    telemetry into the parent tracer); merge drivers only ever see the
    bare ``result``.  Picklable by construction: both fields are plain
    data.
    """

    __slots__ = ("result", "telemetry")

    def __init__(self, result: object, telemetry: dict) -> None:
        self.result = result
        self.telemetry = telemetry

    def __getstate__(self):
        return (self.result, self.telemetry)

    def __setstate__(self, state):
        self.result, self.telemetry = state


def shard_site(fn) -> str:
    """The fault-point site name for a shard kernel."""
    return f"worker.{fn.__name__}"


# one rehydrated registry per (arming registry, epoch); a single slot
# suffices because one dispatch loop ships one spec at a time
_CACHED_KEY: Optional[tuple] = None
_CACHED_REGISTRY: Optional[FaultRegistry] = None


def _rehydrated(spec: Optional[dict]) -> Optional[FaultRegistry]:
    global _CACHED_KEY, _CACHED_REGISTRY
    if spec is None:
        return None
    key = tuple(spec["key"])
    if _CACHED_KEY != key:
        _CACHED_KEY = key
        _CACHED_REGISTRY = FaultRegistry.from_spec(spec)
    return _CACHED_REGISTRY


def _captured(kernel, kernel_payload, memory=None) -> "ShardEnvelope":
    """Run one kernel under a fresh in-worker tracer; envelope the
    result with the telemetry snapshot.

    The root span is the kernel's ``worker.*`` site name with the
    worker ``pid`` attached; ``shard`` / ``attempt`` provenance is
    stamped parent-side at stitch time (the worker does not know its
    shard index).  ``memory`` names a
    :class:`~repro.obs.memory.MemoryProfiler` backend to arm on the
    in-worker tracer (the parent's ``--memory`` flag crossing the
    process boundary): the root span then carries memory attrs, which
    are plain ints and ride the snapshot like any other attr.
    Imported lazily so capture-free dispatches never pay the obs
    imports in a cold worker.
    """
    from repro.obs.sink import CollectingSink
    from repro.obs.stitch import snapshot_telemetry
    from repro.obs.trace import Tracer

    tracer = Tracer(max_spans=_WORKER_MAX_SPANS)
    if memory is not None:
        from repro.obs.memory import MemoryProfiler

        tracer.memory = MemoryProfiler(memory)
    logs = tracer.add_sink(CollectingSink())
    with tracer:
        with tracer.span(shard_site(kernel), pid=os.getpid()):
            result = kernel(kernel_payload)
    return ShardEnvelope(result, snapshot_telemetry(tracer, logs.records))


def run_shard(payload) -> object:
    """Worker-side entry point for chaos-wrapped / captured shards.

    Payload: ``(spec, kernel, kernel_payload)``, optionally extended
    with ``capture`` and a ``memory`` backend name, where ``spec`` is
    an exported armed-fault table (or ``None``) and ``capture`` asks
    for a :class:`ShardEnvelope` with the in-worker telemetry
    snapshot.  Rehydrates the faults, fires the kernel's ``worker.*``
    site, then runs the kernel.  The rehydrated registry is cached per
    process, so its hit counters and seeded random stream persist
    across the tasks this worker runs — the same deterministic
    schedule semantics as the parent's registry.  The fault point
    fires *before* capture starts: a failed attempt ships no telemetry
    (the attempt that succeeds does).
    """
    spec, kernel, kernel_payload = payload[0], payload[1], payload[2]
    capture = len(payload) > 3 and payload[3]
    memory = payload[4] if len(payload) > 4 else None
    registry = _rehydrated(spec)
    if registry is None:
        return (
            _captured(kernel, kernel_payload, memory)
            if capture else kernel(kernel_payload)
        )
    with registry:
        fault_point(shard_site(kernel))
        return (
            _captured(kernel, kernel_payload, memory)
            if capture else kernel(kernel_payload)
        )


def run_quarantined(fn, payload, capture: bool = False, memory=None) -> object:
    """Serial in-process re-execution of a poisoned shard.

    Fires the kernel's ``worker.*`` site against the *ambient* (parent)
    registry — a deterministically poisoned shard stays poisoned here,
    which is what lets tests drive the quarantine-failure path — then
    runs the kernel on the caller's thread.  With ``capture``, the
    kernel runs under a fresh in-worker tracer exactly like a pool
    shard (the nested activation shadows the parent's tracer for the
    kernel's duration) and returns a :class:`ShardEnvelope`, so
    quarantined re-runs stitch into the trace like any other attempt.
    """
    fault_point(shard_site(fn))
    if capture:
        return _captured(fn, payload, memory)
    return fn(payload)


def probe_fault_sequence(payload) -> List[Tuple[str, int, str]]:
    """Rehydrate ``spec`` fresh and fire ``site`` ``hits`` times.

    Payload: ``(spec, site, hits)``.  Returns the registry's log — the
    exact (site, hit, action) firing sequence.  Module-level and
    picklable, so the determinism tests can run it both in-process and
    inside a spawned worker and assert the sequences are identical for
    a fixed seed.  Errors raised by armed faults are recorded and
    swallowed (the probe observes the schedule, not the unwind).
    """
    spec, site, hits = payload
    registry = FaultRegistry.from_spec(spec)
    with registry:
        for _ in range(hits):
            try:
                fault_point(site)
            except Exception:
                pass
    return registry.log


def join_shard(payload) -> Tuple[list, int, float]:
    """Join one shard of left tuples against the full widened right side.

    Payload: ``(left, combined, wide_b, buckets, unpinned)`` where
    ``left`` is a sequence of ``(tuple, pin)`` pairs — ``pin`` is the
    constant the partition column is equated to (``None`` when the
    tuple is unpinned or no partition index applies) — and ``buckets``
    / ``unpinned`` are the right-side partition index (``buckets`` is
    ``None`` for the plain nested loop).  Mirrors ``Relation.join``'s
    pairing loop exactly, so the union of shard outputs is the serial
    output set.  Returns ``(merged_tuples, pairs_considered, seconds)``.
    """
    left, combined, wide_b, buckets, unpinned = payload
    t0 = time.perf_counter()
    out: List = []
    considered = 0
    nb = len(wide_b)
    blocked = (
        _KERNEL.columnar
        and bool(left)
        and isinstance(left[0][0].theory, DenseOrderTheory)
    )
    for a, pin in left:
        wide_a = a.extend(combined)
        if buckets is None or pin is None:
            matches = range(nb)
        else:
            # preserve the nested loop's right-side order
            matches = sorted(buckets.get(pin, ()) + unpinned)
        if blocked:
            # the same columnar fast path Relation.join takes serially
            considered += len(matches)
            out.extend(merge_block(a.theory, wide_a, wide_b, matches, combined))
            continue
        for bi in matches:
            considered += 1
            merged = wide_a.merge(wide_b[bi], combined)
            if merged is not None:
                out.append(merged)
    return out, considered, time.perf_counter() - t0


def project_shard(payload) -> Tuple[list, List[int], float]:
    """Eliminate the victim columns from one shard of tuples.

    Payload: ``(tuples, victims, target)``.  Quantifier elimination is
    tuple-local, so each shard runs the full column-by-column pass on
    its own tuples; the per-column survivor counts are returned so the
    parent can replay the serial guard charges (summed across shards
    they equal the serial counts exactly).  Returns
    ``(reordered_tuples, per_column_survivors, seconds)``.
    """
    tuples, victims, target = payload
    t0 = time.perf_counter()
    current = list(tuples)
    counts: List[int] = []
    for column in victims:
        survivors: List = []
        for t in current:
            survivors.extend(t.project_out_all(column))
        current = survivors
        counts.append(len(survivors))
    out = [t.reorder(target) for t in current]
    return out, counts, time.perf_counter() - t0


def absorb_shard(payload) -> Tuple[List[int], float]:
    """Absorption survivors for one contiguous index range.

    Payload: ``(distinct, start, stop)`` — the **full** deduplicated
    tuple list plus the range this shard decides.  Survival of index
    ``i`` depends on the whole list (any tuple may subsume it) but not
    on other survival decisions, so disjoint ranges computed
    independently and concatenated in order reproduce the serial
    result byte-for-byte.  Returns ``(surviving_indices, seconds)``.
    """
    distinct, start, stop = payload
    t0 = time.perf_counter()
    kept = _absorb_survivors(distinct, start, stop)
    return kept, time.perf_counter() - t0
