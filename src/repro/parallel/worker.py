"""Picklable shard kernels, executed inside pool workers.

Each function here is a pure, module-level function of one payload
tuple — exactly what a :class:`~concurrent.futures.ProcessPoolExecutor`
can ship to a child process.  They replicate the inner loops of the
corresponding ``Relation`` operations **without** touching the guard,
tracer, fault-injection, or execution-context context variables:
budgets and metrics are the parent's job (the merge step replays the
serial-equivalent accounting; see :mod:`repro.parallel.backend`), and
a forked worker inheriting the parent's context variables must not
recurse into the parallel path or double-charge a budget.

Every kernel returns its own wall-clock seconds as the last element,
so the parent can report worker utilization without a second clock
source in the children.
"""

from __future__ import annotations

import time
from typing import List, Tuple

from repro.core.relation import _absorb_survivors

__all__ = ["join_shard", "project_shard", "absorb_shard"]


def join_shard(payload) -> Tuple[list, int, float]:
    """Join one shard of left tuples against the full widened right side.

    Payload: ``(left, combined, wide_b, buckets, unpinned)`` where
    ``left`` is a sequence of ``(tuple, pin)`` pairs — ``pin`` is the
    constant the partition column is equated to (``None`` when the
    tuple is unpinned or no partition index applies) — and ``buckets``
    / ``unpinned`` are the right-side partition index (``buckets`` is
    ``None`` for the plain nested loop).  Mirrors ``Relation.join``'s
    pairing loop exactly, so the union of shard outputs is the serial
    output set.  Returns ``(merged_tuples, pairs_considered, seconds)``.
    """
    left, combined, wide_b, buckets, unpinned = payload
    t0 = time.perf_counter()
    out: List = []
    considered = 0
    nb = len(wide_b)
    for a, pin in left:
        wide_a = a.extend(combined)
        if buckets is None or pin is None:
            matches = range(nb)
        else:
            # preserve the nested loop's right-side order
            matches = sorted(buckets.get(pin, ()) + unpinned)
        for bi in matches:
            considered += 1
            merged = wide_a.merge(wide_b[bi], combined)
            if merged is not None:
                out.append(merged)
    return out, considered, time.perf_counter() - t0


def project_shard(payload) -> Tuple[list, List[int], float]:
    """Eliminate the victim columns from one shard of tuples.

    Payload: ``(tuples, victims, target)``.  Quantifier elimination is
    tuple-local, so each shard runs the full column-by-column pass on
    its own tuples; the per-column survivor counts are returned so the
    parent can replay the serial guard charges (summed across shards
    they equal the serial counts exactly).  Returns
    ``(reordered_tuples, per_column_survivors, seconds)``.
    """
    tuples, victims, target = payload
    t0 = time.perf_counter()
    current = list(tuples)
    counts: List[int] = []
    for column in victims:
        survivors: List = []
        for t in current:
            survivors.extend(t.project_out_all(column))
        current = survivors
        counts.append(len(survivors))
    out = [t.reorder(target) for t in current]
    return out, counts, time.perf_counter() - t0


def absorb_shard(payload) -> Tuple[List[int], float]:
    """Absorption survivors for one contiguous index range.

    Payload: ``(distinct, start, stop)`` — the **full** deduplicated
    tuple list plus the range this shard decides.  Survival of index
    ``i`` depends on the whole list (any tuple may subsume it) but not
    on other survival decisions, so disjoint ranges computed
    independently and concatenated in order reproduce the serial
    result byte-for-byte.  Returns ``(surviving_indices, seconds)``.
    """
    distinct, start, stop = payload
    t0 = time.perf_counter()
    kept = _absorb_survivors(distinct, start, stop)
    return kept, time.perf_counter() - t0
