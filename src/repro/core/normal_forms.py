"""Formula normal forms: NNF and prenex form.

The closed-form evaluator is compositional and does not need these, but
they are part of any serious FO toolkit (and the dense-order QE story
is classically told through prenex form: eliminate the innermost
quantifier from a quantifier-free matrix).

* :func:`to_nnf` pushes negation to the atoms (NE-expanding dense-order
  atoms on request), eliminating ``ForAll`` in favor of
  ``Not/Exists`` duals only when asked;
* :func:`to_prenex` pulls all quantifiers to an outer prefix with
  capture-avoiding renaming;
* both preserve semantics exactly (property-tested against the
  evaluator).
"""

from __future__ import annotations

import itertools
from typing import List, Set, Tuple

from repro.core.formula import (
    FALSE,
    TRUE,
    And,
    Constraint,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    RelationAtom,
    _Boolean,
    conj,
    disj,
)
from repro.core.terms import Var
from repro.errors import EvaluationError

__all__ = ["to_nnf", "to_prenex", "is_quantifier_free", "matrix_and_prefix"]


def is_quantifier_free(formula: Formula) -> bool:
    if isinstance(formula, (_Boolean, Constraint, RelationAtom)):
        return True
    if isinstance(formula, (And, Or)):
        return all(is_quantifier_free(s) for s in formula.subs)
    if isinstance(formula, Not):
        return is_quantifier_free(formula.sub)
    return False


def to_nnf(formula: Formula, expand_ne: bool = False) -> Formula:
    """Negation normal form: ``not`` only on atoms (or folded away).

    With ``expand_ne`` dense-order atoms are negated structurally
    (``not (a < b)`` becomes ``b <= a``), so no ``Not`` nodes remain at
    all; otherwise negated relation atoms keep their ``Not``.
    """
    return _nnf(formula, negate=False, expand_ne=expand_ne)


def _nnf(formula: Formula, negate: bool, expand_ne: bool) -> Formula:
    if isinstance(formula, _Boolean):
        if negate:
            return FALSE if formula.value else TRUE
        return formula
    if isinstance(formula, Constraint):
        if not negate:
            return formula
        if expand_ne:
            parts = formula.atom.negate()
            return disj(*(Constraint(p) for p in parts))
        return Not(formula)
    if isinstance(formula, RelationAtom):
        return Not(formula) if negate else formula
    if isinstance(formula, Not):
        return _nnf(formula.sub, not negate, expand_ne)
    if isinstance(formula, And):
        subs = tuple(_nnf(s, negate, expand_ne) for s in formula.subs)
        return Or(subs) if negate else And(subs)
    if isinstance(formula, Or):
        subs = tuple(_nnf(s, negate, expand_ne) for s in formula.subs)
        return And(subs) if negate else Or(subs)
    if isinstance(formula, Exists):
        body = _nnf(formula.sub, negate, expand_ne)
        return ForAll(formula.variables, body) if negate else Exists(formula.variables, body)
    if isinstance(formula, ForAll):
        body = _nnf(formula.sub, negate, expand_ne)
        return Exists(formula.variables, body) if negate else ForAll(formula.variables, body)
    raise EvaluationError(f"cannot normalize node {type(formula).__name__}")


def to_prenex(formula: Formula) -> Formula:
    """Equivalent prenex formula: a quantifier prefix over a matrix.

    Works on the NNF (so negation never blocks a quantifier), renames
    bound variables apart to avoid capture.
    """
    counter = itertools.count()
    used: Set[str] = {v.name for v in formula.free_variables()}

    def fresh(base: str) -> Var:
        while True:
            candidate = f"{base}_{next(counter)}"
            if candidate not in used:
                used.add(candidate)
                return Var(candidate)

    def pull(node: Formula) -> Tuple[List[Tuple[type, Var]], Formula]:
        if isinstance(node, (_Boolean, Constraint, RelationAtom)):
            return [], node
        if isinstance(node, Not):  # NNF: only on atoms
            return [], node
        if isinstance(node, (And, Or)):
            prefix: List[Tuple[type, Var]] = []
            matrices = []
            for s in node.subs:
                sub_prefix, matrix = pull(s)
                prefix.extend(sub_prefix)
                matrices.append(matrix)
            rebuilt = And(tuple(matrices)) if isinstance(node, And) else Or(tuple(matrices))
            return prefix, rebuilt
        if isinstance(node, (Exists, ForAll)):
            body = node.sub
            renamed: List[Tuple[type, Var]] = []
            for v in node.variables:
                new = fresh(v.name)
                body = body.substitute({v: new})
                renamed.append((type(node), new))
            sub_prefix, matrix = pull(body)
            return renamed + sub_prefix, matrix
        raise EvaluationError(f"cannot prenex node {type(node).__name__}")

    prefix, matrix = pull(to_nnf(formula))
    result = matrix
    for kind, variable in reversed(prefix):
        result = kind((variable,), result)
    return result


def matrix_and_prefix(formula: Formula) -> Tuple[List[Tuple[str, Var]], Formula]:
    """Split a prenex formula into (prefix, matrix).

    Prefix entries are ``("exists" | "forall", var)`` outermost-first.
    Raises if the formula is not prenex.
    """
    prefix: List[Tuple[str, Var]] = []
    node = formula
    while isinstance(node, (Exists, ForAll)):
        kind = "exists" if isinstance(node, Exists) else "forall"
        for v in node.variables:
            prefix.append((kind, v))
        node = node.sub
    if not is_quantifier_free(node):
        raise EvaluationError("formula is not in prenex form")
    return prefix, node
