"""k-dimensional boxes: the paper's rectangle encoding (Section 2).

The paper's running example is a set of rectangles in the rational
plane, and it notes that such "particular shaped objects can be
represented by four constants along with a flag indicating the shape
(and boundary conditions)", giving an efficient encoding of dense-order
databases.  A :class:`Box` is the k-dimensional version: a product of
intervals.  :class:`BoxSet` is a finite union of boxes with exact
set operations (complement and difference split along dimensions).

Boxes are a *fast path*: every box set is a generalized relation whose
tuples contain only variable-vs-constant atoms, and conversions in both
directions are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.atoms import Op
from repro.core.gtuple import GTuple
from repro.core.intervals import Interval, IntervalSet
from repro.core.relation import Relation
from repro.core.terms import Const, Var, as_fraction
from repro.core.theory import DENSE_ORDER
from repro.errors import SchemaError

__all__ = ["Box", "BoxSet"]


@dataclass(frozen=True)
class Box:
    """A product of intervals, one per dimension."""

    sides: Tuple[Interval, ...]

    @classmethod
    def make(cls, *sides: Interval) -> "Box":
        return cls(tuple(sides))

    @classmethod
    def closed(cls, *bounds: Sequence) -> "Box":
        """``Box.closed((a1, b1), ..., (ak, bk))`` -- closed in every dimension."""
        return cls(tuple(Interval.closed(lo, hi) for lo, hi in bounds))

    @classmethod
    def open(cls, *bounds: Sequence) -> "Box":
        return cls(tuple(Interval.open(lo, hi) for lo, hi in bounds))

    @property
    def dimension(self) -> int:
        return len(self.sides)

    def is_empty(self) -> bool:
        return any(side.is_empty() for side in self.sides)

    def contains(self, point: Sequence) -> bool:
        if len(point) != self.dimension:
            raise SchemaError("point dimension mismatch")
        return all(side.contains(v) for side, v in zip(self.sides, point))

    def intersection(self, other: "Box") -> "Box":
        if self.dimension != other.dimension:
            raise SchemaError("box dimension mismatch")
        return Box(tuple(a.intersection(b) for a, b in zip(self.sides, other.sides)))

    def to_gtuple(self, schema: Sequence[str]) -> Optional[GTuple]:
        if len(schema) != self.dimension:
            raise SchemaError("schema arity does not match box dimension")
        atoms: List = []
        for column, side in zip(schema, self.sides):
            atoms.extend(side.to_atoms(column))
        if self.is_empty():
            return None
        return GTuple.make(DENSE_ORDER, schema, atoms)

    def __str__(self) -> str:
        return " x ".join(map(str, self.sides))


class BoxSet:
    """A finite union of same-dimension boxes (empties dropped)."""

    __slots__ = ("dimension", "boxes")

    def __init__(self, boxes: Iterable[Box] = (), dimension: Optional[int] = None) -> None:
        kept = [b for b in boxes if not b.is_empty()]
        if dimension is None:
            if not kept:
                raise SchemaError("empty BoxSet needs an explicit dimension")
            dimension = kept[0].dimension
        for b in kept:
            if b.dimension != dimension:
                raise SchemaError("mixed box dimensions in BoxSet")
        self.dimension = dimension
        self.boxes: Tuple[Box, ...] = tuple(kept)

    def is_empty(self) -> bool:
        return not self.boxes

    def contains(self, point: Sequence) -> bool:
        return any(b.contains(point) for b in self.boxes)

    def union(self, other: "BoxSet") -> "BoxSet":
        self._check(other)
        return BoxSet(self.boxes + other.boxes, self.dimension)

    def intersection(self, other: "BoxSet") -> "BoxSet":
        self._check(other)
        out = [a.intersection(b) for a in self.boxes for b in other.boxes]
        return BoxSet(out, self.dimension)

    def complement(self) -> "BoxSet":
        """Complement as a union of boxes (per-box, per-dimension splits)."""
        result = [Box(tuple(Interval.all() for _ in range(self.dimension)))]
        for box in self.boxes:
            pieces: List[Box] = []
            for current in result:
                pieces.extend(_subtract_box(current, box))
            result = pieces
            if not result:
                break
        return BoxSet(result, self.dimension)

    def difference(self, other: "BoxSet") -> "BoxSet":
        self._check(other)
        return self.intersection(other.complement())

    def _check(self, other: "BoxSet") -> None:
        if self.dimension != other.dimension:
            raise SchemaError("box set dimension mismatch")

    # ------------------------------------------------------------- conversion

    def to_relation(self, schema: Sequence[str]) -> Relation:
        tuples = []
        for box in self.boxes:
            made = box.to_gtuple(schema)
            if made is not None:
                tuples.append(made)
        return Relation(DENSE_ORDER, schema, tuples)

    @classmethod
    def from_relation(cls, relation: Relation) -> "BoxSet":
        """Convert a relation whose tuples are axis-aligned (no var-var atoms).

        Raises :class:`SchemaError` if some tuple relates two variables
        (such pointsets are not box unions in general).
        """
        boxes = []
        for t in relation.tuples:
            per_column = {c: [None, None, True, True, None] for c in relation.schema}
            # [lo, hi, lo_open, hi_open, pinned]
            for a in t.atoms:
                left_var = isinstance(a.left, Var)
                right_var = isinstance(a.right, Var)
                if left_var and right_var:
                    raise SchemaError(
                        "relation is not axis-aligned: tuple relates two variables"
                    )
                if a.op is Op.EQ:
                    column = a.left.name if left_var else a.right.name
                    value = a.right.value if left_var else a.left.value
                    per_column[column][4] = value
                    continue
                strict = a.op is Op.LT
                if left_var:  # x < c / x <= c : upper bound
                    slot = per_column[a.left.name]
                    bound = a.right.value
                    if slot[1] is None or bound < slot[1] or (bound == slot[1] and strict):
                        slot[1], slot[3] = bound, strict
                else:  # c < x / c <= x : lower bound
                    slot = per_column[a.right.name]
                    bound = a.left.value
                    if slot[0] is None or bound > slot[0] or (bound == slot[0] and strict):
                        slot[0], slot[2] = bound, strict
            sides = []
            for c in relation.schema:
                lo, hi, lo_open, hi_open, pinned = per_column[c]
                if pinned is not None:
                    sides.append(Interval.point(pinned))
                else:
                    sides.append(
                        Interval(
                            lo,
                            hi,
                            lo_open if lo is not None else True,
                            hi_open if hi is not None else True,
                        )
                    )
            boxes.append(Box(tuple(sides)))
        return cls(boxes, len(relation.schema))

    def __len__(self) -> int:
        return len(self.boxes)

    def __iter__(self):
        return iter(self.boxes)

    def __repr__(self) -> str:
        return f"<BoxSet dim={self.dimension} with {len(self.boxes)} box(es)>"


def _subtract_box(current: Box, cut: Box) -> List[Box]:
    """``current minus cut`` as disjoint boxes (sweep per dimension)."""
    overlap = current.intersection(cut)
    if overlap.is_empty():
        return [current]
    pieces: List[Box] = []
    remaining = list(current.sides)
    for d in range(current.dimension):
        side = remaining[d]
        cut_side = overlap.sides[d]
        for part in cut_side.complement():
            shard = part.intersection(side)
            if shard.is_empty():
                continue
            sides = list(remaining)
            sides[d] = shard
            pieces.append(Box(tuple(sides)))
        remaining[d] = cut_side
    return pieces
