"""Reasoning over conjunctions of dense-order atoms.

A conjunction of atoms over ``{<, <=, =}`` (NE-free; see
:mod:`repro.core.atoms`) is represented as a directed graph whose nodes
are the terms (variables and constants) and whose edges carry a
strictness bit: ``u -> v`` strict means ``u < v``, non-strict means
``u <= v``; ``u = v`` contributes edges both ways.

Because ``(Q, <=)`` is a dense linear order without endpoints, *every*
consistent set of order constraints is realizable: the only sources of
inconsistency are (a) a cycle containing a strict edge, and (b) two
distinct constants forced equal.  Constants carry their numeric order
implicitly (``1 < 2`` holds whether or not stated), which the graph
materializes as edges between consecutive constants present in it.

The graph supports:

* :meth:`OrderGraph.is_satisfiable` -- consistency of the conjunction;
* :meth:`OrderGraph.implies` -- entailment of a single atom;
* :meth:`OrderGraph.relation_between` -- strongest derived relation;
* :meth:`OrderGraph.canonical_atoms` -- a deterministic minimal
  generating set (used to deduplicate generalized tuples);
* :meth:`OrderGraph.solve` -- an explicit rational witness (used by the
  sample-point evaluator and by tests).

All methods are exact; complexity is cubic in the number of terms of a
single conjunction, which is small in practice (a generalized tuple
mentions its schema variables plus a handful of constants).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.atoms import Atom, Op, atom, eq, le, lt
from repro.core.terms import Const, Term, Var, term_key
from repro.errors import TheoryError

__all__ = ["OrderGraph"]

#: closure entry: True = strict path exists, False = weak path only
_Reach = Dict[Term, Dict[Term, bool]]


class OrderGraph:
    """Entailment graph for one conjunction of NE-free dense-order atoms."""

    def __init__(self, atoms: Iterable[Atom] = ()) -> None:
        self._edges: Dict[Term, Dict[Term, bool]] = {}
        self._nodes: set = set()
        self._closure: Optional[_Reach] = None
        self._sat: Optional[bool] = None
        self._consts: Optional[List[Const]] = None
        for a in atoms:
            self.add(a)

    # ------------------------------------------------------------------ build

    def add(self, a: Atom) -> None:
        """Add one atom to the conjunction."""
        if a.op is Op.NE:
            raise TheoryError("OrderGraph handles NE-free conjunctions only")
        if a.op in (Op.GE, Op.GT):  # pragma: no cover - atoms normalize these away
            raise TheoryError("atoms must be normalized before reaching OrderGraph")
        self._closure = None
        self._sat = None
        self._consts = None
        self._touch(a.left)
        self._touch(a.right)
        if a.op is Op.LT:
            self._edge(a.left, a.right, strict=True)
        elif a.op is Op.LE:
            self._edge(a.left, a.right, strict=False)
        else:  # EQ
            self._edge(a.left, a.right, strict=False)
            self._edge(a.right, a.left, strict=False)

    def _touch(self, node: Term) -> None:
        if node not in self._nodes:
            self._nodes.add(node)
            self._edges.setdefault(node, {})

    def _edge(self, u: Term, v: Term, strict: bool) -> None:
        row = self._edges.setdefault(u, {})
        row[v] = row.get(v, False) or strict

    # ---------------------------------------------------------------- closure

    @property
    def nodes(self) -> FrozenSet[Term]:
        return frozenset(self._nodes)

    def _constant_nodes(self) -> List[Const]:
        if self._consts is None:
            self._consts = sorted(
                (n for n in self._nodes if isinstance(n, Const)), key=lambda c: c.value
            )
        return self._consts

    def _compute_closure(self) -> _Reach:
        if self._closure is not None:
            return self._closure
        reach: _Reach = {u: dict(row) for u, row in self._edges.items()}
        for node in self._nodes:
            reach.setdefault(node, {})
        # materialize the numeric order of the constants present
        consts = self._constant_nodes()
        for lo, hi in zip(consts, consts[1:]):
            row = reach.setdefault(lo, {})
            row[hi] = True
        nodes = list(self._nodes)
        for mid in nodes:
            mid_row = list(reach[mid].items())
            for src in nodes:
                src_row = reach[src]
                if mid not in src_row:
                    continue
                via_strict = src_row[mid]
                for dst, leg_strict in mid_row:
                    strict = via_strict or leg_strict
                    if src_row.get(dst, None) is not True:
                        if dst in src_row:
                            src_row[dst] = src_row[dst] or strict
                        else:
                            src_row[dst] = strict
        self._closure = reach
        return reach

    # ---------------------------------------------------------------- queries

    def is_satisfiable(self) -> bool:
        """True iff the conjunction has a rational solution.

        The verdict is memoized: entailers call this per query, and the
        graph is immutable between :meth:`add` calls.
        """
        if self._sat is not None:
            return self._sat
        self._sat = self._satisfiable()
        return self._sat

    def _satisfiable(self) -> bool:
        reach = self._compute_closure()
        for node, row in reach.items():
            if row.get(node) is True:  # strict cycle
                return False
        # two distinct constants forced equal
        consts = self._constant_nodes()
        for i, c1 in enumerate(consts):
            row = reach.get(c1, {})
            for c2 in consts[i + 1 :]:
                if row.get(c2) is not None and reach.get(c2, {}).get(c1) is not None:
                    return False
        return True

    def relation_between(self, a: Term, b: Term) -> Optional[Op]:
        """Strongest derived relation ``a op b``; None if unconstrained.

        Returns one of ``EQ``, ``LT``, ``LE``, ``GT``, ``GE`` or None.
        Both terms must already occur in the graph (constants that do
        not occur are compared numerically against occurring constants
        only through explicit atoms).
        """
        if a == b:
            return Op.EQ
        if isinstance(a, Const) and isinstance(b, Const):
            return Op.LT if a.value < b.value else (Op.EQ if a.value == b.value else Op.GT)
        reach = self._compute_closure()
        fwd = reach.get(a, {}).get(b)
        bwd = reach.get(b, {}).get(a)
        if fwd is not None and bwd is not None:
            return Op.EQ  # (unsat if either is strict; caller checks satisfiability)
        if fwd is True:
            return Op.LT
        if fwd is False:
            return Op.LE
        if bwd is True:
            return Op.GT
        if bwd is False:
            return Op.GE
        # fall back to numeric reasoning when one side is a constant the
        # graph has never seen (e.g. {x = -1} entails x <= 0)
        if isinstance(b, Const) and b not in self._nodes and a in self._nodes:
            return self._relation_to_fresh_constant(a, b)
        if isinstance(a, Const) and a not in self._nodes and b in self._nodes:
            rel = self._relation_to_fresh_constant(b, a)
            return rel.flipped if rel is not None else None
        return None

    def _relation_to_fresh_constant(self, node: Term, c: Const) -> Optional[Op]:
        """Strongest relation ``node op c`` for a constant not in the graph."""
        reach = self._compute_closure()
        row = reach.get(node, {})
        at_most_c = False
        at_least_c = False
        for other in self._constant_nodes():
            if other in row:  # node </<= other
                if other.value < c.value or (other.value == c.value and row[other]):
                    return Op.LT
                if other.value == c.value:
                    at_most_c = True
            if node in reach.get(other, {}):  # other </<= node
                if other.value > c.value or (other.value == c.value and reach[other][node]):
                    return Op.GT
                if other.value == c.value:
                    at_least_c = True
        if at_most_c and at_least_c:
            return Op.EQ
        if at_most_c:
            return Op.LE
        if at_least_c:
            return Op.GE
        return None

    def implies(self, candidate: Union[Atom, bool]) -> bool:
        """Entailment: does the (satisfiable) conjunction imply ``candidate``?

        An unsatisfiable conjunction implies everything.
        """
        if isinstance(candidate, bool):
            return candidate or not self.is_satisfiable()
        if not self.is_satisfiable():
            return True
        rel = self.relation_between(candidate.left, candidate.right)
        if candidate.op is Op.NE:
            return rel in (Op.LT, Op.GT)
        if rel is None:
            return False
        if candidate.op is Op.EQ:
            return rel is Op.EQ
        if candidate.op is Op.LT:
            return rel is Op.LT
        if candidate.op is Op.LE:
            return rel in (Op.LT, Op.LE, Op.EQ)
        raise TheoryError(f"non-normalized candidate atom {candidate}")

    # ------------------------------------------------------------ equivalence

    def equality_classes(self) -> List[FrozenSet[Term]]:
        """Partition of the nodes into classes forced equal."""
        reach = self._compute_closure()
        seen: set = set()
        classes: List[FrozenSet[Term]] = []
        for node in sorted(self._nodes, key=term_key):
            if node in seen:
                continue
            members = {node}
            row = reach.get(node, {})
            for other in self._nodes:
                if other is node or other in seen:
                    continue
                if other in row and node in reach.get(other, {}):
                    members.add(other)
            seen |= members
            classes.append(frozenset(members))
        return classes

    def _representatives(self) -> Dict[Term, Term]:
        """Map each node to its class representative (a constant if any)."""
        rep: Dict[Term, Term] = {}
        for cls in self.equality_classes():
            consts = sorted((t for t in cls if isinstance(t, Const)), key=term_key)
            members = sorted(cls, key=term_key)
            chosen = consts[0] if consts else members[0]
            for member in cls:
                rep[member] = chosen
        return rep

    def canonical_atoms(self) -> FrozenSet[Atom]:
        """A deterministic minimal atom set generating the same conjunction.

        Raises :class:`TheoryError` on an unsatisfiable conjunction.
        The construction: pick a representative per equality class
        (preferring constants), emit ``member = rep`` equalities, then
        the transitive reduction of the strict/weak order on the
        representatives, dropping constant-to-constant edges (implicit
        in the numeric order).
        """
        if not self.is_satisfiable():
            raise TheoryError("canonical form of an unsatisfiable conjunction")
        rep = self._representatives()
        out: set = set()
        for member, chosen in rep.items():
            if member != chosen:
                made = eq(member, chosen)
                if not isinstance(made, bool):
                    out.add(made)
        reach = self._compute_closure()
        reps = sorted({r for r in rep.values()}, key=term_key)
        # derived relation between representative classes
        edges: Dict[Tuple[Term, Term], bool] = {}
        for i, u in enumerate(reps):
            for v in reps[i + 1 :]:
                rel = self.relation_between(u, v)
                if rel in (Op.LT, Op.LE):
                    edges[(u, v)] = rel is Op.LT
                elif rel in (Op.GT, Op.GE):
                    edges[(v, u)] = rel is Op.GT

        def reachable(a: Term, b: Term) -> Optional[bool]:
            if isinstance(a, Const) and isinstance(b, Const):
                if a.value < b.value:
                    return True
                return None
            entry = reach.get(a, {}).get(b)
            return entry

        for (u, v), strict in edges.items():
            if isinstance(u, Const) and isinstance(v, Const):
                continue  # numeric order is implicit
            redundant = False
            for w in reps:
                if w == u or w == v:
                    continue
                first = reachable(u, w)
                second = reachable(w, v)
                if first is None or second is None:
                    continue
                path_strict = bool(first) or bool(second)
                if path_strict or not strict:
                    redundant = True
                    break
            if not redundant:
                made = lt(u, v) if strict else le(u, v)
                if not isinstance(made, bool):
                    out.add(made)
        return frozenset(out)

    # ----------------------------------------------------------------- solve

    def solve(self) -> Optional[Dict[Var, Fraction]]:
        """An explicit rational assignment satisfying the conjunction.

        Returns None when unsatisfiable.  Variables of distinct
        equality classes receive distinct values strictly inside their
        feasible intervals, so the witness also satisfies every
        *implied strict* relation.
        """
        if not self.is_satisfiable():
            return None
        rep = self._representatives()
        reach = self._compute_closure()
        reps = sorted(set(rep.values()), key=term_key)
        values: Dict[Term, Fraction] = {}
        pending = []
        for r in reps:
            if isinstance(r, Const):
                values[r] = r.value
            else:
                pending.append(r)
        # constant bounds per representative, from the closure
        consts = self._constant_nodes()

        def const_bounds(node: Term) -> Tuple[Optional[Fraction], Optional[Fraction]]:
            lo: Optional[Fraction] = None
            hi: Optional[Fraction] = None
            row = reach.get(node, {})
            for c in consts:
                if rep[c] == node:
                    continue
                if c in row:  # node <= / < c
                    hi = c.value if hi is None else min(hi, c.value)
                if node in reach.get(c, {}):  # c <= / < node
                    lo = c.value if lo is None else max(lo, c.value)
            return lo, hi

        # order the variable representatives by the induced partial order
        def preds(node: Term) -> List[Term]:
            result = []
            for other in pending:
                if other == node:
                    continue
                if node in reach.get(other, {}):
                    result.append(other)
            return result

        remaining = list(pending)
        ordered: List[Term] = []
        placed: set = set()
        while remaining:
            progressed = False
            for node in list(remaining):
                if all(p in placed for p in preds(node)):
                    ordered.append(node)
                    placed.add(node)
                    remaining.remove(node)
                    progressed = True
            if not progressed:  # pragma: no cover - impossible once satisfiable
                raise TheoryError("cyclic order among distinct classes")

        for node in ordered:
            lo, hi = const_bounds(node)
            for p in preds(node):
                pv = values[p]
                lo = pv if lo is None else max(lo, pv)
            if lo is None and hi is None:
                values[node] = Fraction(0)
            elif lo is None:
                values[node] = hi - 1
            elif hi is None:
                values[node] = lo + 1
            else:
                if not lo < hi:  # pragma: no cover - guarded by satisfiability
                    raise TheoryError("no interior point available for witness")
                values[node] = (lo + hi) / 2

        witness: Dict[Var, Fraction] = {}
        for node in self._nodes:
            if isinstance(node, Var):
                chosen = rep[node]
                witness[node] = values[chosen] if isinstance(chosen, Var) else chosen.value
        return witness
