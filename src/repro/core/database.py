"""Database instances: named finitely-representable relations.

A *dense-order database instance* (paper Section 2) is an expansion of
``Q = (Q, <=)`` with finitely representable relations -- here, a mapping
from relation names to :class:`~repro.core.relation.Relation` values
sharing one constraint theory.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple

from repro.core.relation import Relation
from repro.core.theory import ConstraintTheory, DENSE_ORDER
from repro.errors import SchemaError

__all__ = ["Database"]


class Database:
    """A named collection of generalized relations over one theory."""

    def __init__(
        self,
        relations: Optional[Mapping[str, Relation]] = None,
        theory: ConstraintTheory = DENSE_ORDER,
    ) -> None:
        self.theory = theory
        self._relations: Dict[str, Relation] = {}
        if relations:
            for name, relation in relations.items():
                self[name] = relation

    # -------------------------------------------------------------- mapping

    def __setitem__(self, name: str, relation: Relation) -> None:
        if not isinstance(name, str) or not name:
            raise SchemaError(f"invalid relation name {name!r}")
        if relation.theory is not self.theory and relation.theory != self.theory:
            raise SchemaError(
                f"relation {name!r} uses theory {relation.theory.name!r}, "
                f"database uses {self.theory.name!r}"
            )
        self._relations[name] = relation

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self):
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def items(self) -> Iterable[Tuple[str, Relation]]:
        return self._relations.items()

    def names(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    # ------------------------------------------------------------ inspection

    def schema(self, name: str) -> Tuple[str, ...]:
        return self[name].schema

    def arity(self, name: str) -> int:
        return self[name].arity

    def constants(self) -> FrozenSet[Fraction]:
        """All rational constants occurring in any relation's representation."""
        out: set = set()
        for relation in self._relations.values():
            out |= relation.constants()
        return frozenset(out)

    def copy(self) -> "Database":
        return Database(dict(self._relations), theory=self.theory)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}/{relation.arity}" for name, relation in self._relations.items()
        )
        return f"<Database [{parts}]>"
