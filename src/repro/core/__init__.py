"""Dense-order constraint algebra: the paper's data model and FO engine.

Public surface re-exported here:

* terms and atoms: :class:`Var`, :class:`Const`, :func:`atom` and the
  ``lt/le/eq/ne/ge/gt`` helpers;
* :class:`GTuple` and :class:`Relation` -- generalized tuples/relations;
* the formula AST (:class:`Formula`, :func:`exists`, :func:`forall`,
  :func:`rel`, ...) and :func:`evaluate` / :func:`evaluate_boolean`;
* the query-planner stack: plan IR (:func:`compile_formula`,
  :func:`execute`, :func:`explain`), rewrite rules
  (:class:`RuleEngine`, :func:`optimize`), the ledger-calibrated
  :class:`CostModel`, and per-operator dispatch
  (:class:`QueryPlanner`, :func:`plan_physical`);
* quantifier elimination and decision procedures in :mod:`repro.core.qe`;
* the canonical 1-D form (:class:`Interval`, :class:`IntervalSet`) and
  the box fast path (:class:`Box`, :class:`BoxSet`).
"""

from repro.core.atoms import Atom, Op, atom, eq, ge, gt, le, lt, ne
from repro.core.boxes import Box, BoxSet
from repro.core.database import Database
from repro.core.evaluator import evaluate, evaluate_boolean
from repro.core.formula import (
    FALSE,
    TRUE,
    And,
    Constraint,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    RelationAtom,
    conj,
    constraint,
    disj,
    exists,
    forall,
    rel,
)
from repro.core.gtuple import GTuple
from repro.core.intervals import Interval, IntervalSet
from repro.core.normal_forms import (
    is_quantifier_free,
    matrix_and_prefix,
    to_nnf,
    to_prenex,
)
from repro.core.costmodel import (
    CostModel,
    estimate_plan,
    fit_cost_model,
    load_cost_model,
)
from repro.core.physical import QueryPlanner, execute_plan, plan_physical, render_plan
from repro.core.planner import compile_formula, execute, explain, optimize
from repro.core.rules import RewriteRule, RuleEngine, heuristic_engine
from repro.core.qe import (
    eliminate_quantifiers,
    equivalent,
    formula_to_relation,
    is_satisfiable,
    is_valid,
    relation_to_formula,
)
from repro.core.relation import Relation
from repro.core.sampling import eval_at, evaluate_sentence, sample_points
from repro.core.terms import Const, Term, Var, as_fraction, as_term
from repro.core.theory import DENSE_ORDER, ConstraintTheory, DenseOrderTheory

__all__ = [
    "Atom",
    "Op",
    "atom",
    "eq",
    "ge",
    "gt",
    "le",
    "lt",
    "ne",
    "Box",
    "BoxSet",
    "Database",
    "evaluate",
    "evaluate_boolean",
    "FALSE",
    "TRUE",
    "And",
    "Constraint",
    "Exists",
    "ForAll",
    "Formula",
    "Not",
    "Or",
    "RelationAtom",
    "conj",
    "constraint",
    "disj",
    "exists",
    "forall",
    "rel",
    "GTuple",
    "Interval",
    "IntervalSet",
    "is_quantifier_free",
    "matrix_and_prefix",
    "to_nnf",
    "to_prenex",
    "compile_formula",
    "execute",
    "explain",
    "optimize",
    "CostModel",
    "estimate_plan",
    "fit_cost_model",
    "load_cost_model",
    "QueryPlanner",
    "execute_plan",
    "plan_physical",
    "render_plan",
    "RewriteRule",
    "RuleEngine",
    "heuristic_engine",
    "eliminate_quantifiers",
    "equivalent",
    "formula_to_relation",
    "is_satisfiable",
    "is_valid",
    "relation_to_formula",
    "Relation",
    "eval_at",
    "evaluate_sentence",
    "sample_points",
    "Const",
    "Term",
    "Var",
    "as_fraction",
    "as_term",
    "DENSE_ORDER",
    "ConstraintTheory",
    "DenseOrderTheory",
]
