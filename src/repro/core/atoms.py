"""Atomic dense-order constraints.

An atom is ``t1 op t2`` with ``op`` one of ``< <= = != >= >`` and the
``ti`` terms over ``(Q, <=)``.  Atoms are normalized at construction:

* ``>=`` and ``>`` are flipped to ``<=`` / ``<`` (sides swapped);
* ``=`` and ``!=`` order their sides canonically (so ``x = y`` and
  ``y = x`` are the same atom);
* constant-vs-constant comparisons fold to ``True`` / ``False``;
* trivially reflexive comparisons fold (``x <= x`` is true, ``x < x``
  is false).

The *normal* atom vocabulary used inside generalized tuples is
``{LT, LE, EQ}``; ``NE`` exists as a surface form and is expanded into
``LT or GT`` wherever a disjunction is available (formula normalization,
atom negation).  Keeping generalized tuples NE-free is what makes
variable elimination a single-case bound composition (see
:meth:`repro.core.theory.DenseOrderTheory.project_out`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Mapping, Union

from repro.core.terms import Const, Term, TermLike, Var, as_term, substitute_term, term_key
from repro.errors import TheoryError

__all__ = ["Op", "Atom", "atom", "lt", "le", "eq", "ne", "ge", "gt"]


class Op(enum.Enum):
    """Comparison operators, with their textual form."""

    LT = "<"
    LE = "<="
    EQ = "="
    NE = "!="
    GE = ">="
    GT = ">"

    @property
    def is_symmetric(self) -> bool:
        return self in (Op.EQ, Op.NE)

    @property
    def negated(self) -> "Op":
        return _NEGATION[self]

    @property
    def flipped(self) -> "Op":
        """The operator with the two sides exchanged: ``a op b == b op.flipped a``."""
        return _FLIP[self]

    def holds(self, left, right) -> bool:
        """Evaluate the comparison on two comparable values."""
        if self is Op.LT:
            return left < right
        if self is Op.LE:
            return left <= right
        if self is Op.EQ:
            return left == right
        if self is Op.NE:
            return left != right
        if self is Op.GE:
            return left >= right
        return left > right


_NEGATION = {
    Op.LT: Op.GE,
    Op.LE: Op.GT,
    Op.EQ: Op.NE,
    Op.NE: Op.EQ,
    Op.GE: Op.LT,
    Op.GT: Op.LE,
}

_FLIP = {
    Op.LT: Op.GT,
    Op.LE: Op.GE,
    Op.EQ: Op.EQ,
    Op.NE: Op.NE,
    Op.GE: Op.LE,
    Op.GT: Op.LT,
}


@dataclass(frozen=True)
class Atom:
    """A normalized atomic constraint ``left op right``.

    Use :func:`atom` (or the ``lt``/``le``/... helpers) to construct
    atoms from loose inputs; the dataclass constructor expects already
    normalized parts and is mostly internal.
    """

    left: Term
    op: Op
    right: Term

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.left, self.op, self.right)))

    def __hash__(self) -> int:  # cached: atoms live in hot frozensets
        return self._hash

    def __reduce__(self):
        # rebuild through the constructor so the cached (salted) hash
        # is recomputed in the unpickling process
        return (Atom, (self.left, self.op, self.right))

    def __str__(self) -> str:
        return f"{self.left} {self.op.value} {self.right}"

    @property
    def variables(self) -> frozenset:
        """The variables occurring in the atom."""
        return frozenset(t for t in (self.left, self.right) if isinstance(t, Var))

    @property
    def constants(self) -> frozenset:
        """The rational constants occurring in the atom (as Fractions)."""
        return frozenset(t.value for t in (self.left, self.right) if isinstance(t, Const))

    @property
    def is_strict(self) -> bool:
        return self.op is Op.LT

    def substitute(self, mapping: Mapping[Var, Term]) -> Union["Atom", bool]:
        """Apply a variable substitution; may fold to a boolean."""
        return atom(
            substitute_term(self.left, mapping), self.op, substitute_term(self.right, mapping)
        )

    def negate(self) -> List["Atom"]:
        """The negation of this atom, as a disjunction of NE-free atoms.

        ``not (a < b)``  is ``b <= a``; ``not (a <= b)`` is ``b < a``;
        ``not (a = b)`` is ``a < b or b < a``.
        """
        neg = atom(self.left, self.op.negated, self.right)
        if isinstance(neg, bool):
            raise TheoryError(f"negation of {self} folded unexpectedly")  # pragma: no cover
        if neg.op is Op.NE:
            return [
                _make(neg.left, Op.LT, neg.right),
                _make(neg.right, Op.LT, neg.left),
            ]
        return [neg]

    def expand_ne(self) -> List["Atom"]:
        """Expand an NE atom to the disjunction ``left < right or right < left``.

        Non-NE atoms are returned unchanged (singleton list).
        """
        if self.op is not Op.NE:
            return [self]
        return [
            _make(self.left, Op.LT, self.right),
            _make(self.right, Op.LT, self.left),
        ]

    def evaluate(self, assignment: Mapping[Var, object]) -> bool:
        """Evaluate under a total assignment of Fractions to its variables."""

        def value(term: Term):
            if isinstance(term, Const):
                return term.value
            try:
                return assignment[term]
            except KeyError:
                raise TheoryError(f"no value for variable {term} in assignment") from None

        return self.op.holds(value(self.left), value(self.right))


def _make(left: Term, op: Op, right: Term) -> Atom:
    return Atom(left, op, right)


def atom(left: TermLike, op: Union[Op, str], right: TermLike) -> Union[Atom, bool]:
    """Build a normalized atom; folds to ``True``/``False`` when ground or trivial.

    Examples::

        atom("x", "<=", 3)        # x <= 3
        atom(1, "<", 2)           # True
        atom("x", ">", "y")       # y < x   (flipped)
        atom("x", "=", "x")       # True
    """
    lhs = as_term(left)
    rhs = as_term(right)
    operator = Op(op) if not isinstance(op, Op) else op

    if isinstance(lhs, Const) and isinstance(rhs, Const):
        return operator.holds(lhs.value, rhs.value)
    if lhs == rhs:
        return operator in (Op.LE, Op.EQ, Op.GE)

    if operator in (Op.GE, Op.GT):
        lhs, rhs = rhs, lhs
        operator = operator.flipped
    if operator.is_symmetric and term_key(rhs) < term_key(lhs):
        lhs, rhs = rhs, lhs
    return _make(lhs, operator, rhs)


def lt(left: TermLike, right: TermLike) -> Union[Atom, bool]:
    """``left < right``"""
    return atom(left, Op.LT, right)


def le(left: TermLike, right: TermLike) -> Union[Atom, bool]:
    """``left <= right``"""
    return atom(left, Op.LE, right)


def eq(left: TermLike, right: TermLike) -> Union[Atom, bool]:
    """``left = right``"""
    return atom(left, Op.EQ, right)


def ne(left: TermLike, right: TermLike) -> Union[Atom, bool]:
    """``left != right``"""
    return atom(left, Op.NE, right)


def ge(left: TermLike, right: TermLike) -> Union[Atom, bool]:
    """``left >= right`` (normalized to ``right <= left``)"""
    return atom(left, Op.GE, right)


def gt(left: TermLike, right: TermLike) -> Union[Atom, bool]:
    """``left > right`` (normalized to ``right < left``)"""
    return atom(left, Op.GT, right)
