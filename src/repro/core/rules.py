"""HepPlanner-style rewrite-rule engine for query plans.

The seed planner hard-coded four rewrite passes; this module replaces
that with the architecture Calcite's HepPlanner popularized (see
SNIPPETS.md Snippet 2): a list of named :class:`RewriteRule` objects,
each a ``matches``/``apply`` pair over a single plan node, driven to
fixpoint by a :class:`RuleEngine` under a total rule-firing budget.

Rules must be semantics-preserving on the query's pointset and must
keep the plan's output schema unchanged -- both are checked by the
random-formula equivalence tests in ``tests/core``.

The engine is purely logical: cardinality/cost estimation lives in
:mod:`repro.core.costmodel` and serial-vs-parallel dispatch in
:mod:`repro.core.physical`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.database import Database
from repro.core.planner import (
    Absorb,
    Complement,
    ConstraintScan,
    Empty,
    Join,
    Plan,
    Project,
    Scan,
    Select,
    Shared,
    Union,
    Universe,
    _estimate,
    _rewrite_children,
)

__all__ = [
    "RewriteRule",
    "RuleEngine",
    "HEURISTIC_RULES",
    "heuristic_engine",
    "DEFAULT_FIRING_BUDGET",
]

DEFAULT_FIRING_BUDGET = 4096
_MAX_PASSES = 32


class RewriteRule:
    """A named, local plan rewrite: ``matches`` guards, ``apply`` fires.

    ``apply`` receives the node (children already rewritten -- the
    engine works bottom-up) and must return an equivalent plan with the
    same schema; returning the node unchanged means "no match after
    all" and is not counted as a firing.
    """

    name = "?"

    def matches(self, plan: Plan) -> bool:
        raise NotImplementedError

    def apply(self, plan: Plan, db: Optional[Database]) -> Plan:
        raise NotImplementedError


class FlattenJoin(RewriteRule):
    """``Join(Join(a, b), c)`` -> ``Join(a, b, c)``."""

    name = "flatten-join"

    def matches(self, plan: Plan) -> bool:
        return isinstance(plan, Join) and any(isinstance(p, Join) for p in plan.parts)

    def apply(self, plan: Plan, db: Optional[Database]) -> Plan:
        parts: List[Plan] = []
        for p in plan.parts:
            parts.extend(p.parts if isinstance(p, Join) else (p,))
        return Join(tuple(parts))


class FlattenUnion(RewriteRule):
    """``Union(Union(a, b), c)`` -> ``Union(a, b, c)``."""

    name = "flatten-union"

    def matches(self, plan: Plan) -> bool:
        return isinstance(plan, Union) and any(isinstance(p, Union) for p in plan.parts)

    def apply(self, plan: Plan, db: Optional[Database]) -> Plan:
        parts: List[Plan] = []
        for p in plan.parts:
            parts.extend(p.parts if isinstance(p, Union) else (p,))
        return Union(tuple(parts))


class MergeSelects(RewriteRule):
    """``Select(Select(x, a), b)`` -> ``Select(x, a + b)``.

    Constraint-selection merging: stacked selections become one
    operator call conjoining all atoms at once.
    """

    name = "merge-selects"

    def matches(self, plan: Plan) -> bool:
        return isinstance(plan, Select) and isinstance(plan.source, Select)

    def apply(self, plan: Plan, db: Optional[Database]) -> Plan:
        return Select(plan.source.source, plan.source.atoms + plan.atoms)


class PushSelectIntoJoin(RewriteRule):
    """Push each selection atom into the join part covering its variables."""

    name = "push-select-join"

    def matches(self, plan: Plan) -> bool:
        if not (isinstance(plan, Select) and isinstance(plan.source, Join)):
            return False
        schemas = [set(p.schema) for p in plan.source.parts]
        return any(
            any({v.name for v in atom.variables} <= s for s in schemas)
            for atom in plan.atoms
        )

    def apply(self, plan: Plan, db: Optional[Database]) -> Plan:
        remaining: List = []
        parts = list(plan.source.parts)
        for atom in plan.atoms:
            needed = {v.name for v in atom.variables}
            for i, part in enumerate(parts):
                if needed <= set(part.schema):
                    parts[i] = Select(part, (atom,))
                    break
            else:
                remaining.append(atom)
        pushed = Join(tuple(parts))
        return Select(pushed, tuple(remaining)) if remaining else pushed


class PushSelectIntoUnion(RewriteRule):
    """Distribute a selection over a union when every part covers it."""

    name = "push-select-union"

    def matches(self, plan: Plan) -> bool:
        if not (isinstance(plan, Select) and isinstance(plan.source, Union)):
            return False
        needed = set()
        for atom in plan.atoms:
            needed |= {v.name for v in atom.variables}
        return all(needed <= set(p.schema) for p in plan.source.parts)

    def apply(self, plan: Plan, db: Optional[Database]) -> Plan:
        return Union(tuple(Select(p, plan.atoms) for p in plan.source.parts))


class ConstraintJoinToSelect(RewriteRule):
    """``Join(R, sigma)`` with a covered constraint -> ``Select(R, sigma)``."""

    name = "constraint-join-select"

    def matches(self, plan: Plan) -> bool:
        if not isinstance(plan, Join):
            return False
        relational = [p for p in plan.parts if not isinstance(p, ConstraintScan)]
        constraints = [p for p in plan.parts if isinstance(p, ConstraintScan)]
        if not relational or not constraints:
            return False
        return any(
            any(set(c.schema) <= set(r.schema) for r in relational)
            for c in constraints
        )

    def apply(self, plan: Plan, db: Optional[Database]) -> Plan:
        relational = [p for p in plan.parts if not isinstance(p, ConstraintScan)]
        leftover: List[Plan] = []
        for scan in plan.parts:
            if not isinstance(scan, ConstraintScan):
                continue
            needed = set(scan.schema)
            for i, part in enumerate(relational):
                if needed <= set(part.schema):
                    relational[i] = Select(part, (scan.atom,))
                    break
            else:
                leftover.append(scan)
        parts = relational + leftover
        return parts[0] if len(parts) == 1 else Join(tuple(parts))


class ReorderJoin(RewriteRule):
    """Order >=3-way join parts smallest-estimate first."""

    name = "reorder-join"

    def matches(self, plan: Plan) -> bool:
        return isinstance(plan, Join) and len(plan.parts) > 2

    def apply(self, plan: Plan, db: Optional[Database]) -> Plan:
        ordered = tuple(sorted(plan.parts, key=lambda p: _estimate(p, db)))
        return plan if ordered == plan.parts else Join(ordered)


class RemoveDoubleComplement(RewriteRule):
    """``Complement(Complement(x))`` -> ``x`` (same schema, same pointset)."""

    name = "double-complement"

    def matches(self, plan: Plan) -> bool:
        return isinstance(plan, Complement) and isinstance(plan.source, Complement)

    def apply(self, plan: Plan, db: Optional[Database]) -> Plan:
        return plan.source.source


class PropagateEmpty(RewriteRule):
    """Constant-fold Empty/Universe children without changing schemas."""

    name = "propagate-empty"

    def matches(self, plan: Plan) -> bool:
        return self.apply(plan, None) != plan

    def apply(self, plan: Plan, db: Optional[Database]) -> Plan:
        if isinstance(plan, Select) and isinstance(plan.source, Empty):
            return plan.source
        if isinstance(plan, Project) and isinstance(plan.source, Empty):
            return Empty(plan.columns)
        if isinstance(plan, Complement) and isinstance(plan.source, Empty):
            return Universe(plan.source.columns)
        if isinstance(plan, Complement) and isinstance(plan.source, Universe):
            return Empty(plan.source.columns)
        if isinstance(plan, Join):
            if any(isinstance(p, Empty) for p in plan.parts):
                return Empty(plan.schema)
            kept = [p for p in plan.parts if not isinstance(p, Universe)]
            if len(kept) < len(plan.parts) and kept:
                slimmer = kept[0] if len(kept) == 1 else Join(tuple(kept))
                if slimmer.schema == plan.schema:
                    return slimmer
        if isinstance(plan, Union):
            kept = [p for p in plan.parts if not isinstance(p, Empty)]
            if not kept:
                return Empty(plan.schema)
            if len(kept) < len(plan.parts):
                slimmer = kept[0] if len(kept) == 1 else Union(tuple(kept))
                if slimmer.schema == plan.schema:
                    return slimmer
        return plan


class PlaceAbsorb(RewriteRule):
    """Insert absorption where a smaller representation pays downstream.

    Two placements: below a Complement whose input is a Join or Union
    (complement cost is exponential in input tuple count), and above
    wide (>=3-part) unions feeding another operator (unions accumulate
    subsumed tuples).  Firing at the *consumer* keeps the rule
    idempotent: once wrapped, the child is an Absorb and no longer
    matches.
    """

    name = "place-absorb"

    @staticmethod
    def _wants_absorb(child: Plan) -> bool:
        return isinstance(child, Union) and len(child.parts) >= 3

    def matches(self, plan: Plan) -> bool:
        if isinstance(plan, Complement) and isinstance(plan.source, (Join, Union)):
            return True
        if isinstance(plan, (Select, Project)) and self._wants_absorb(plan.source):
            return True
        if isinstance(plan, Join) and any(self._wants_absorb(p) for p in plan.parts):
            return True
        return False

    def apply(self, plan: Plan, db: Optional[Database]) -> Plan:
        if isinstance(plan, Complement):
            return Complement(Absorb(plan.source))
        if isinstance(plan, Select):
            return Select(Absorb(plan.source), plan.atoms)
        if isinstance(plan, Project):
            return Project(Absorb(plan.source), plan.columns)
        return Join(
            tuple(Absorb(p) if self._wants_absorb(p) else p for p in plan.parts)
        )


class DedupCommonSubplans(RewriteRule):
    """Wrap repeated non-leaf subtrees in ``Shared`` markers.

    Plan nodes are value objects, so duplicated subtrees compare equal;
    executors memoize on a Shared node's source and evaluate it once.
    Whole-tree rule: the engine applies it at the root only.
    """

    name = "dedup-subplans"
    whole_tree = True

    def matches(self, plan: Plan) -> bool:
        return True

    def apply(self, plan: Plan, db: Optional[Database]) -> Plan:
        counts: Counter = Counter()

        def visit(p: Plan) -> None:
            if not isinstance(p, Shared) and p.children():
                counts[p] += 1
            for c in p.children():
                visit(c)

        visit(plan)
        targets = {p for p, n in counts.items() if n >= 2}
        if not targets:
            return plan

        def wrap(p: Plan, under_shared: bool) -> Plan:
            if not under_shared and not isinstance(p, Shared) and p in targets:
                return Shared(p)
            return _rewrite_children(p, lambda c: wrap(c, isinstance(p, Shared)))

        # never wrap the root itself: a top-level Shared buys nothing
        return _rewrite_children(plan, lambda c: wrap(c, isinstance(plan, Shared)))


HEURISTIC_RULES: Tuple[RewriteRule, ...] = (
    FlattenJoin(),
    FlattenUnion(),
    MergeSelects(),
    PushSelectIntoJoin(),
    PushSelectIntoUnion(),
    ConstraintJoinToSelect(),
    RemoveDoubleComplement(),
    PropagateEmpty(),
    ReorderJoin(),
    PlaceAbsorb(),
    DedupCommonSubplans(),
)


class RuleEngine:
    """Drive a rule list to fixpoint with a total firing budget.

    Each pass rewrites the tree bottom-up, trying every node-local rule
    at every node in list order, then the whole-tree rules at the root.
    Passes repeat until the plan stops changing, the firing budget is
    exhausted, or the pass cap is hit.  ``fired`` records per-rule
    firing counts for the ``planner.rule.fired`` metrics.
    """

    def __init__(
        self,
        rules: Sequence[RewriteRule] = HEURISTIC_RULES,
        database: Optional[Database] = None,
        budget: int = DEFAULT_FIRING_BUDGET,
    ) -> None:
        self.rules = tuple(rules)
        self.database = database
        self.budget = budget
        self.fired: Dict[str, int] = {}
        self._spent = 0

    def run(self, plan: Plan) -> Plan:
        for _ in range(_MAX_PASSES):
            new = self._pass(plan)
            if new == plan or self._spent >= self.budget:
                return new
            plan = new
        return plan

    def _fire(self, rule: RewriteRule, plan: Plan) -> Plan:
        if self._spent >= self.budget or not rule.matches(plan):
            return plan
        new = rule.apply(plan, self.database)
        if new != plan:
            self._spent += 1
            self.fired[rule.name] = self.fired.get(rule.name, 0) + 1
            return new
        return plan

    def _pass(self, plan: Plan) -> Plan:
        plan = self._node_pass(plan)
        for rule in self.rules:
            if getattr(rule, "whole_tree", False):
                plan = self._fire(rule, plan)
        return plan

    def _node_pass(self, plan: Plan) -> Plan:
        plan = _rewrite_children(plan, self._node_pass)
        for rule in self.rules:
            if not getattr(rule, "whole_tree", False):
                plan = self._fire(rule, plan)
        return plan


def heuristic_engine(database: Optional[Database] = None) -> RuleEngine:
    """A fresh engine with the standard heuristic rule list."""
    return RuleEngine(HEURISTIC_RULES, database)
