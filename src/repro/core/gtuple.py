"""Generalized tuples ([KKR90]; paper Section 2).

A *k-ary generalized tuple* is a conjunction of constraint atoms over k
distinguished variables -- a finite representation of a potentially
infinite set of points in ``Q^k``.  For instance the paper's triangle::

    (x <= y  and  x >= 0  and  y <= 10)

is a binary generalized tuple.  A classical tuple ``(a, b)`` is the
special case ``x = a and y = b``.

A :class:`GTuple` pairs a *schema* (ordered column names) with a
canonicalized, satisfiable-or-empty set of atoms drawn from a
:class:`~repro.core.theory.ConstraintTheory`.  Construction filters
trivially-true atoms and canonicalizes, so two logically equivalent
conjunctions over the same schema compare (and hash) equal for the
dense-order theory.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.terms import Term, Var
from repro.core.theory import ConstraintTheory, DenseOrderTheory
from repro.errors import SchemaError, TheoryError
from repro.perf.columnar import kernel_selector, pack_gtuple, unpack_gtuple
from repro.perf.interning import intern_pool

__all__ = ["GTuple", "Schema", "check_schema"]

Schema = Tuple[str, ...]

_KERNEL = kernel_selector()


def _restore_gtuple(theory: ConstraintTheory, schema: Schema, atoms: FrozenSet) -> "GTuple":
    """Unpickle through the interning constructor (see GTuple.__reduce__)."""
    return GTuple._canonical(theory, schema, atoms)


def _restore_packed_gtuple(
    theory: ConstraintTheory, schema: Schema, slots: tuple, matrix: bytes
) -> "GTuple":
    """Unpickle a columnar shard payload: slots + flat edge matrix."""
    return GTuple._canonical(theory, schema, unpack_gtuple(schema, slots, matrix))


def check_schema(schema: Sequence[str]) -> Schema:
    """Validate and freeze a schema (ordered, distinct column names)."""
    out = tuple(schema)
    if len(set(out)) != len(out):
        raise SchemaError(f"duplicate column names in schema {out}")
    for col in out:
        if not isinstance(col, str) or not col:
            raise SchemaError(f"invalid column name {col!r}")
    return out


class GTuple:
    """One generalized tuple: schema + satisfiable conjunction of atoms.

    Instances are immutable and hashable.  Use
    :meth:`GTuple.make` to construct (it returns None when the
    conjunction is unsatisfiable, which callers treat as "no tuple").
    """

    __slots__ = ("theory", "schema", "atoms", "_hash", "_entailer", "__weakref__")

    def __init__(self, theory: ConstraintTheory, schema: Schema, atoms: FrozenSet) -> None:
        self.theory = theory
        self.schema = schema
        self.atoms = atoms
        self._hash = hash((theory.name, schema, atoms))
        self._entailer = None

    # ------------------------------------------------------------ construction

    @classmethod
    def _canonical(
        cls, theory: ConstraintTheory, schema: Schema, atoms: FrozenSet
    ) -> "GTuple":
        """The unique pooled instance for already-canonical parts.

        Interning makes structurally equal tuples the same object, so
        equality short-circuits on identity and the lazily built
        entailer is shared across all construction sites.  With the
        pool disabled this is a plain allocation.
        """
        pool = intern_pool()
        if not pool.enabled:
            return cls(theory, schema, atoms)
        key = (theory, schema, atoms)
        found = pool.get(key)
        if found is not None:
            return found
        made = cls(theory, schema, atoms)
        pool.add(key, made)
        return made

    @classmethod
    def make(
        cls,
        theory: ConstraintTheory,
        schema: Sequence[str],
        atoms: Iterable = (),
    ) -> Optional["GTuple"]:
        """Build a generalized tuple; None when unsatisfiable.

        Atoms may include booleans (``True`` is dropped, ``False``
        yields None).  Every atom must only mention schema variables.
        """
        frozen_schema = check_schema(schema)
        allowed = {Var(c) for c in frozen_schema}
        kept: List = []
        for a in atoms:
            if a is True:
                continue
            if a is False:
                return None
            extra = theory.atom_variables(a) - allowed
            if extra:
                names = ", ".join(sorted(v.name for v in extra))
                raise SchemaError(f"atom {a} mentions non-schema variables: {names}")
            kept.append(a)
        canonical = theory.canonicalize_if_satisfiable(kept)
        if canonical is None:
            return None
        return cls._canonical(theory, frozen_schema, canonical)

    @classmethod
    def universe(cls, theory: ConstraintTheory, schema: Sequence[str]) -> "GTuple":
        """The unconstrained tuple (all of ``Q^k``)."""
        return cls._canonical(theory, check_schema(schema), frozenset())

    @classmethod
    def point(
        cls, theory: ConstraintTheory, schema: Sequence[str], values: Sequence
    ) -> "GTuple":
        """The classical tuple ``x1 = v1 and ... and xk = vk``."""
        from repro.core.terms import as_term

        frozen_schema = check_schema(schema)
        if len(values) != len(frozen_schema):
            raise SchemaError("value count does not match schema arity")
        made = cls.make(
            theory,
            frozen_schema,
            [theory.equality_atom(Var(c), as_term(v)) for c, v in zip(frozen_schema, values)],
        )
        if made is None:  # pragma: no cover - equalities to constants are satisfiable
            raise TheoryError("point tuple unexpectedly unsatisfiable")
        return made

    # -------------------------------------------------------------- inspection

    @property
    def arity(self) -> int:
        return len(self.schema)

    def variables(self) -> FrozenSet[Var]:
        return frozenset(Var(c) for c in self.schema)

    def constants(self) -> FrozenSet[Fraction]:
        return self.theory.conjunction_constants(self.atoms)

    def __eq__(self, other: object) -> bool:
        if self is other:  # interning makes this the common case
            return True
        return (
            isinstance(other, GTuple)
            and self.theory is other.theory
            and self.schema == other.schema
            and self.atoms == other.atoms
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Ship only (theory, schema, atoms): the cached hash is salted
        # and the lazy entailer closes over unpicklable kernel state,
        # so both are rebuilt on the receiving side -- and routing
        # through _canonical re-interns the tuple into that process's
        # pool, keeping the identity fast paths effective for shard
        # payloads crossing a process boundary.  Under the columnar
        # kernel a dense-order tuple ships as schema slots plus a flat
        # edge-matrix byte string instead of a graph of atom/term
        # objects; canonical atom sets carry at most one atom per term
        # pair, so the packed form decodes to the identical frozenset
        # (pack_gtuple returns None for the rare unpackable set, which
        # falls back to the object payload).
        if _KERNEL.columnar and isinstance(self.theory, DenseOrderTheory):
            packed = pack_gtuple(self.schema, self.atoms)
            if packed is not None:
                slots, matrix = packed
                return (
                    _restore_packed_gtuple,
                    (self.theory, self.schema, slots, matrix),
                )
        return (_restore_gtuple, (self.theory, self.schema, self.atoms))

    def __repr__(self) -> str:
        cols = ", ".join(self.schema)
        body = " and ".join(sorted(str(a) for a in self.atoms)) or "true"
        return f"<GTuple ({cols}) | {body}>"

    # -------------------------------------------------------------- operations

    def conjoin(self, atoms: Iterable) -> Optional["GTuple"]:
        """Add atoms; None when the result is unsatisfiable."""
        return GTuple.make(self.theory, self.schema, list(self.atoms) + list(atoms))

    def merge(self, other: "GTuple", schema: Sequence[str]) -> Optional["GTuple"]:
        """Conjunction of two tuples over a common target schema."""
        if self.theory is not other.theory and self.theory != other.theory:
            raise TheoryError("cannot merge tuples from different theories")
        return GTuple.make(self.theory, schema, list(self.atoms) + list(other.atoms))

    def project_out(self, column: str) -> Optional["GTuple"]:
        """Existentially eliminate one column.  None when unsatisfiable.

        (The conjunction is satisfiable by construction and dense-order
        projection preserves satisfiability, but theories with case
        splits may produce several tuples; see :meth:`project_out_all`.)
        """
        results = self.project_out_all(column)
        if not results:
            return None
        if len(results) > 1:  # pragma: no cover - single-case for shipped theories
            raise TheoryError("projection split into cases; use project_out_all")
        return results[0]

    def project_out_all(self, column: str) -> List["GTuple"]:
        """Existential elimination returning all case-split results."""
        if column not in self.schema:
            raise SchemaError(f"column {column!r} not in schema {self.schema}")
        new_schema = tuple(c for c in self.schema if c != column)
        out: List[GTuple] = []
        for conj in self.theory.project_out(list(self.atoms), Var(column)):
            made = GTuple.make(self.theory, new_schema, conj)
            if made is not None:
                out.append(made)
        return out

    def extend(self, schema: Sequence[str]) -> "GTuple":
        """Reinterpret over a larger schema (new columns unconstrained)."""
        frozen = check_schema(schema)
        if frozen == self.schema:
            return self
        missing = set(self.schema) - set(frozen)
        if missing:
            raise SchemaError(f"extend target schema drops columns {sorted(missing)}")
        return GTuple._canonical(self.theory, frozen, self.atoms)

    def rename(self, mapping: Mapping[str, str]) -> "GTuple":
        """Rename columns according to ``mapping`` (missing = identity)."""
        new_schema = check_schema(tuple(mapping.get(c, c) for c in self.schema))
        subst = {Var(old): Var(new) for old, new in mapping.items() if old != new}
        atoms = []
        for a in self.atoms:
            sub = self.theory.substitute_atom(a, subst)
            if sub is True:
                continue
            if sub is False:  # pragma: no cover - renaming cannot falsify
                raise TheoryError("rename folded an atom to false")
            atoms.append(sub)
        made = GTuple.make(self.theory, new_schema, atoms)
        if made is None:  # pragma: no cover - renaming preserves satisfiability
            raise TheoryError("rename produced an unsatisfiable tuple")
        return made

    def substitute(self, mapping: Mapping[str, Term]) -> Optional["GTuple"]:
        """Substitute terms for columns; result ranges over remaining columns."""
        subst = {Var(c): t for c, t in mapping.items()}
        new_schema = tuple(c for c in self.schema if c not in mapping)
        atoms = []
        for a in self.atoms:
            sub = self.theory.substitute_atom(a, subst)
            if sub is True:
                continue
            if sub is False:
                return None
            atoms.append(sub)
        return GTuple.make(self.theory, new_schema, atoms)

    def reorder(self, schema: Sequence[str]) -> "GTuple":
        """Same columns in a different order."""
        frozen = check_schema(schema)
        if frozen == self.schema:
            return self
        if set(frozen) != set(self.schema):
            raise SchemaError(f"reorder changes column set: {self.schema} -> {frozen}")
        return GTuple._canonical(self.theory, frozen, self.atoms)

    # -------------------------------------------------------------- semantics

    def contains_point(self, values: Sequence[Fraction]) -> bool:
        """Is the rational point in the denoted set?"""
        if len(values) != self.arity:
            raise SchemaError("point arity does not match schema")
        assignment = {Var(c): v for c, v in zip(self.schema, values)}
        return all(self.theory.evaluate_atom(a, assignment) for a in self.atoms)

    def sample_point(self) -> Dict[str, Fraction]:
        """An explicit rational point in the denoted (non-empty) set."""
        witness = self.theory.solve(list(self.atoms))
        if witness is None:  # pragma: no cover - tuples are satisfiable by construction
            raise TheoryError("satisfiable tuple produced no witness")
        return {c: witness.get(Var(c), Fraction(0)) for c in self.schema}

    def entails(self, a) -> bool:
        """Does this tuple's conjunction imply atom ``a``?

        Repeated checks share one preprocessed entailment context.
        """
        if self._entailer is None:
            self._entailer = self.theory.make_entailer(self.atoms)
        return self._entailer(a)
