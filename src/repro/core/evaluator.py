"""Closed-form bottom-up evaluation of FO queries (paper Section 3).

[KKR90] showed that the relational calculus with dense-order constraints
can be evaluated *bottom-up and in closed form*: instances are mapped to
instances.  This module implements that evaluation compositionally:

* a constraint atom denotes the relation of its solutions;
* ``R(t1..tk)`` denotes the stored relation, specialised to the argument
  terms;
* ``and`` is natural join, ``or`` is union (over the padded common
  schema), ``not`` is complement, ``exists`` is projection, ``forall``
  is the dual of projection.

The result schema of a formula is the *sorted* tuple of its free
variable names; a sentence yields an arity-0 relation, read as a boolean
by :func:`evaluate_boolean`.

Because every step stays inside the finitely-representable class, this
is also a quantifier-elimination procedure: see :mod:`repro.core.qe`.

Evaluation is *resource-governed*: pass ``guard=`` an
:class:`~repro.runtime.guard.EvaluationGuard` (or evaluate inside an
active one) and every recursion step checks the wall-clock deadline,
the formula-depth budget, and cooperative cancellation, while the
relation algebra underneath charges materialized tuples against the
tuple budget.  Without a guard the checkpoints are near-free.
"""

from __future__ import annotations

import contextlib
from typing import Optional, Sequence, Tuple

from repro.core.database import Database
from repro.core.formula import (
    And,
    Constraint,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    RelationAtom,
    _Boolean,
)
from repro.core.gtuple import GTuple
from repro.core.relation import Relation
from repro.core.terms import Const, Var
from repro.core.theory import ConstraintTheory, DENSE_ORDER
from repro.errors import EvaluationError, SchemaError
from repro.obs.trace import active_tracer
from repro.runtime.faults import fault_point
from repro.runtime.guard import EvaluationGuard, active_guard

__all__ = ["evaluate", "evaluate_boolean"]


def _formula_label(formula: Formula, limit: int = 60) -> str:
    text = str(formula)
    return text if len(text) <= limit else text[: limit - 1] + "…"


def _result_schema(formula: Formula) -> Tuple[str, ...]:
    return tuple(sorted(v.name for v in formula.free_variables()))


def _common_schema(*schemas: Sequence[str]) -> Tuple[str, ...]:
    out: set = set()
    for s in schemas:
        out |= set(s)
    return tuple(sorted(out))


def evaluate(
    formula: Formula,
    database: Optional[Database] = None,
    theory: ConstraintTheory = DENSE_ORDER,
    *,
    guard: Optional[EvaluationGuard] = None,
    context=None,
) -> Relation:
    """Evaluate ``formula`` against ``database`` in closed form.

    Returns a :class:`Relation` whose schema is the sorted free-variable
    names of the formula.  ``database`` may be omitted for pure
    constraint formulas.  ``guard`` bounds the evaluation (deadline,
    tuple/depth budgets, cancellation); when omitted, the guard active
    on the calling context (if any) governs the run.  ``context``
    optionally activates a
    :class:`~repro.parallel.context.ExecutionContext` for the run, so
    the expensive relation kernels are sharded across its worker pool;
    serial evaluation (the reference semantics) is the default.
    """
    if database is None:
        database = Database(theory=theory)
    if database.theory is not theory:
        # theories are value objects: separately constructed instances of
        # the same theory are interchangeable.  Normalize onto the
        # database's instance so downstream identity fast paths hold.
        if database.theory != theory:
            raise EvaluationError(
                f"theory mismatch: evaluating with {theory.name!r} over a "
                f"{database.theory.name!r} database"
            )
        theory = database.theory
    tracer = active_tracer()
    with context if context is not None else contextlib.nullcontext():
        if tracer is None:
            if guard is None:
                guard = active_guard()
                result = _eval(formula, database, theory, guard)
            else:
                with guard:
                    result = _eval(formula, database, theory, guard)
        else:
            with tracer.span("fo.evaluate", formula=_formula_label(formula)) as sp:
                if guard is None:
                    guard = active_guard()
                    result = _eval(formula, database, theory, guard)
                else:
                    with guard:
                        result = _eval(formula, database, theory, guard)
                sp.attrs["out_tuples"] = len(result.tuples)
    target = _result_schema(formula)
    if result.schema != target:  # pragma: no cover - _eval keeps schemas sorted
        result = result.extend(_common_schema(result.schema, target)).project(target)
    return result


def evaluate_boolean(
    formula: Formula,
    database: Optional[Database] = None,
    theory: ConstraintTheory = DENSE_ORDER,
    *,
    guard: Optional[EvaluationGuard] = None,
    context=None,
) -> bool:
    """Evaluate a sentence (closed formula) to a boolean."""
    free = formula.free_variables()
    if free:
        names = ", ".join(sorted(v.name for v in free))
        raise EvaluationError(f"formula is not a sentence; free variables: {names}")
    return not evaluate(
        formula, database, theory, guard=guard, context=context
    ).is_empty()


# --------------------------------------------------------------------- core


def _eval(
    formula: Formula,
    db: Database,
    theory: ConstraintTheory,
    guard: Optional[EvaluationGuard],
) -> Relation:
    fault_point("evaluator.eval")
    if guard is None:
        return _eval_node(formula, db, theory, guard)
    guard.tick("evaluator.eval")
    guard.enter_depth("evaluator.eval")
    try:
        return _eval_node(formula, db, theory, guard)
    finally:
        guard.exit_depth()


def _eval_node(
    formula: Formula,
    db: Database,
    theory: ConstraintTheory,
    guard: Optional[EvaluationGuard],
) -> Relation:
    if isinstance(formula, _Boolean):
        schema: Tuple[str, ...] = ()
        if formula.value:
            return Relation.universe(schema, theory)
        return Relation.empty(schema, theory)

    if isinstance(formula, Constraint):
        return _eval_constraint(formula, theory)

    if isinstance(formula, RelationAtom):
        return _eval_relation_atom(formula, db, theory)

    if isinstance(formula, And):
        if not formula.subs:
            return Relation.universe((), theory)
        result = _eval(formula.subs[0], db, theory, guard)
        for sub in formula.subs[1:]:
            if result.is_empty():
                # short-circuit, but keep the full schema for downstream ops
                break
            result = result.join(_eval(sub, db, theory, guard))
        schema = _result_schema(formula)
        return result.extend(_common_schema(result.schema, schema)).project(schema)

    if isinstance(formula, Or):
        schema = _result_schema(formula)
        result = Relation.empty(schema, theory)
        for sub in formula.subs:
            piece = _eval(sub, db, theory, guard)
            padded = piece.extend(_common_schema(piece.schema, schema))
            result = result.union(padded.project(schema) if padded.schema != schema else padded)
        return result

    if isinstance(formula, Not):
        fault_point("evaluator.not")
        if guard is not None:
            guard.note("evaluator.not")
        tracer = active_tracer()
        if tracer is not None:
            tracer.metrics.count("fo.negations")
        inner = _eval(formula.sub, db, theory, guard)
        return inner.complement()

    if isinstance(formula, Exists):
        tracer = active_tracer()
        if tracer is not None:
            tracer.metrics.count("fo.projections")
        inner = _eval(formula.sub, db, theory, guard)
        victims = {v.name for v in formula.variables}
        target = tuple(c for c in inner.schema if c not in victims)
        return inner.project(target)

    if isinstance(formula, ForAll):
        rewritten = Not(Exists(formula.variables, Not(formula.sub)))
        return _eval(rewritten, db, theory, guard)

    raise EvaluationError(f"cannot evaluate formula node {type(formula).__name__}")


def _eval_constraint(formula: Constraint, theory: ConstraintTheory) -> Relation:
    schema = _result_schema(formula)
    disjuncts = formula.atom.expand_ne()
    return Relation.from_atoms(schema, [[d] for d in disjuncts], theory)


def _eval_relation_atom(
    formula: RelationAtom, db: Database, theory: ConstraintTheory
) -> Relation:
    stored = db[formula.name]
    if stored.arity != len(formula.args):
        raise SchemaError(
            f"{formula.name} has arity {stored.arity}, called with {len(formula.args)} args"
        )
    # rename stored columns to fresh internal names, equate with argument
    # terms, then project onto the argument variables
    fresh = tuple(f"__arg{i}" for i in range(stored.arity))
    renamed = stored.rename(dict(zip(stored.schema, fresh)))
    schema = _result_schema(formula)
    wide = renamed.extend(_common_schema(fresh, schema))
    selectors = [theory.equality_atom(Var(column), arg) for column, arg in zip(fresh, formula.args)]
    return wide.select(selectors).project(schema)
