"""Generalized (finitely representable) relations and their algebra.

A *generalized relation* ([KKR90]; paper Section 2) is a finite set of
generalized tuples over a common schema -- the disjunction of their
conjunctions, denoting a (possibly infinite) pointset in ``Q^k``.

:class:`Relation` provides the closed-form relational algebra the paper
relies on (Section 3, after [KKR90]): union, intersection, natural
join, projection (existential quantification), selection, renaming,
complement, and difference.  Every operation returns a new relation in
the same finitely-representable class -- this *closure* property is what
makes the relational calculus a constraint query language.

Complement distributes negation over the representation and is
exponential in the number of tuples in the worst case; ``difference``
and the containment tests route through it tuple-by-tuple with early
pruning.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.gtuple import GTuple, Schema, check_schema
from repro.core.terms import Term, Var
from repro.core.theory import ConstraintTheory, DENSE_ORDER
from repro.errors import SchemaError, TheoryError
from repro.obs.trace import active_tracer
from repro.runtime.faults import fault_point
from repro.runtime.guard import active_guard

__all__ = ["Relation"]


class Relation:
    """A finitely representable relation: finite set of generalized tuples."""

    __slots__ = ("theory", "schema", "tuples")

    def __init__(
        self,
        theory: ConstraintTheory,
        schema: Sequence[str],
        tuples: Iterable[GTuple] = (),
    ) -> None:
        self.theory = theory
        self.schema: Schema = check_schema(schema)
        seen: Dict[GTuple, None] = {}
        for t in tuples:
            if t.schema != self.schema:
                raise SchemaError(f"tuple schema {t.schema} != relation schema {self.schema}")
            if t.theory is not theory and t.theory != theory:
                raise TheoryError("tuple theory differs from relation theory")
            seen.setdefault(t, None)
        self.tuples: Tuple[GTuple, ...] = tuple(seen)

    # ------------------------------------------------------------ construction

    @classmethod
    def empty(cls, schema: Sequence[str], theory: ConstraintTheory = DENSE_ORDER) -> "Relation":
        """The empty relation over ``schema``."""
        return cls(theory, schema, ())

    @classmethod
    def universe(
        cls, schema: Sequence[str], theory: ConstraintTheory = DENSE_ORDER
    ) -> "Relation":
        """All of ``Q^k`` over ``schema``."""
        return cls(theory, schema, (GTuple.universe(theory, schema),))

    @classmethod
    def from_atoms(
        cls,
        schema: Sequence[str],
        disjuncts: Iterable[Iterable],
        theory: ConstraintTheory = DENSE_ORDER,
    ) -> "Relation":
        """Build from a DNF: an iterable of conjunctions (atom iterables)."""
        tuples = []
        for conj in disjuncts:
            made = GTuple.make(theory, schema, conj)
            if made is not None:
                tuples.append(made)
        return cls(theory, schema, tuples)

    @classmethod
    def from_points(
        cls,
        schema: Sequence[str],
        points: Iterable[Sequence],
        theory: ConstraintTheory = DENSE_ORDER,
    ) -> "Relation":
        """A classical finite relation: one point tuple per row."""
        return cls(theory, schema, [GTuple.point(theory, schema, p) for p in points])

    # -------------------------------------------------------------- inspection

    @property
    def arity(self) -> int:
        return len(self.schema)

    def is_empty(self) -> bool:
        """Emptiness of the denoted pointset (tuples are satisfiable)."""
        return not self.tuples

    def constants(self) -> FrozenSet[Fraction]:
        out: set = set()
        for t in self.tuples:
            out |= t.constants()
        return frozenset(out)

    def __len__(self) -> int:
        """Number of generalized tuples in the representation (not points)."""
        return len(self.tuples)

    def __iter__(self):
        return iter(self.tuples)

    def __repr__(self) -> str:
        cols = ", ".join(self.schema)
        return f"<Relation ({cols}) with {len(self.tuples)} generalized tuple(s)>"

    def pretty(self) -> str:
        """Multi-line rendering of the representation."""
        lines = [f"({', '.join(self.schema)}):"]
        if not self.tuples:
            lines.append("  false")
        for t in self.tuples:
            body = " and ".join(sorted(str(a) for a in t.atoms)) or "true"
            lines.append(f"  {body}")
        return "\n".join(lines)

    # -------------------------------------------------------------- set algebra

    def _require_compatible(self, other: "Relation") -> None:
        # identity fast path; theories are value objects (see ConstraintTheory)
        if self.theory is not other.theory and self.theory != other.theory:
            raise TheoryError("relations from different theories")
        if self.schema != other.schema:
            raise SchemaError(f"schema mismatch: {self.schema} vs {other.schema}")

    def union(self, other: "Relation") -> "Relation":
        self._require_compatible(other)
        return Relation(self.theory, self.schema, self.tuples + other.tuples)

    def intersection(self, other: "Relation") -> "Relation":
        self._require_compatible(other)
        out: List[GTuple] = []
        for a in self.tuples:
            for b in other.tuples:
                merged = a.merge(b, self.schema)
                if merged is not None:
                    out.append(merged)
        return Relation(self.theory, self.schema, out)

    def complement(self) -> "Relation":
        """The complement ``Q^k minus R`` in closed form.

        Negation of a DNF: conjunction over tuples of the disjunction of
        the negated atoms.  Worst case exponential in ``len(self)``;
        unsatisfiable branches are pruned as they are built.  An active
        :class:`~repro.runtime.guard.EvaluationGuard` is consulted per
        distribution stage, so blowups trip the deadline or tuple
        budget mid-operation instead of after it; an active
        :class:`~repro.obs.trace.Tracer` records in/out sizes and wall
        time (one context-variable read per call when disabled).
        """
        tracer = active_tracer()
        if tracer is None:
            return self._complement()
        t0 = tracer.clock()
        metrics = tracer.metrics
        metrics.count("relation.complement.calls")
        metrics.observe("relation.complement.in_tuples", len(self.tuples))
        result = self._complement()
        metrics.observe("relation.complement.out_tuples", len(result.tuples))
        metrics.observe("relation.complement.seconds", tracer.clock() - t0)
        return result

    def _complement(self) -> "Relation":
        fault_point("relation.complement")
        guard = active_guard()
        if guard is not None:
            guard.note("relation.complement")
        partial: List[Optional[GTuple]] = [GTuple.universe(self.theory, self.schema)]
        for t in self.tuples:
            if not t.atoms:  # a universe tuple: complement is empty
                return Relation(self.theory, self.schema, ())
            negated: List = []
            for a in t.atoms:
                negated.extend(self.theory.negate_atom(a))
            grown: List[GTuple] = []
            for p in partial:
                if guard is not None:
                    guard.tick("relation.complement")
                for neg in negated:
                    ext = p.conjoin([neg])
                    if ext is not None:
                        grown.append(ext)
            if guard is not None:
                # charge before absorption: the quadratic subsumption
                # pass is itself expensive on a blown-up stage
                guard.on_tuples(len(grown), "relation.complement")
            partial = _absorb(grown)
            if not partial:
                return Relation(self.theory, self.schema, ())
        result = Relation(self.theory, self.schema, partial)
        if guard is not None:
            guard.check_atoms(result, "relation.complement")
        return result

    def difference(self, other: "Relation") -> "Relation":
        self._require_compatible(other)
        if other.is_empty() or self.is_empty():
            return self
        return self.intersection(other.complement())

    # ---------------------------------------------------------- relational ops

    def select(self, atoms: Iterable) -> "Relation":
        """Conjoin constraint atoms (over schema columns) to every tuple."""
        atoms = list(atoms)
        out = []
        for t in self.tuples:
            kept = t.conjoin(atoms)
            if kept is not None:
                out.append(kept)
        return Relation(self.theory, self.schema, out)

    def project(self, columns: Sequence[str]) -> "Relation":
        """Project onto ``columns`` (existentially eliminating the rest)."""
        target = check_schema(columns)
        extra = set(target) - set(self.schema)
        if extra:
            raise SchemaError(f"cannot project onto unknown columns {sorted(extra)}")
        victims = [c for c in self.schema if c not in target]
        current = list(self.tuples)
        if victims:
            fault_point("relation.project")
        guard = active_guard() if victims else None
        tracer = active_tracer() if victims else None
        if guard is not None:
            guard.note("relation.project")
        t0 = 0.0
        if tracer is not None:
            t0 = tracer.clock()
            metrics = tracer.metrics
            metrics.count("relation.project.calls")
            metrics.observe("relation.project.in_tuples", len(current))
        for column in victims:
            survivors: List[GTuple] = []
            for t in current:
                survivors.extend(t.project_out_all(column))
            current = survivors
            if guard is not None:
                guard.note("qe", len(survivors))
                guard.on_tuples(len(survivors), "relation.project")
                guard.tick("relation.project")
            if tracer is not None:
                metrics.count("qe.eliminated_vars")
                metrics.observe("qe.survivors", len(survivors))
        if tracer is not None:
            metrics.observe("relation.project.out_tuples", len(current))
            metrics.observe("relation.project.seconds", tracer.clock() - t0)
        return Relation(self.theory, target, [t.reorder(target) for t in current])

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """Rename columns (missing entries = identity)."""
        new_schema = tuple(mapping.get(c, c) for c in self.schema)
        return Relation(self.theory, new_schema, [t.rename(mapping) for t in self.tuples])

    def extend(self, schema: Sequence[str]) -> "Relation":
        """Pad with unconstrained columns to a wider schema."""
        return Relation(self.theory, schema, [t.extend(schema) for t in self.tuples])

    def join(self, other: "Relation") -> "Relation":
        """Natural join on shared column names."""
        if self.theory is not other.theory and self.theory != other.theory:
            raise TheoryError("relations from different theories")
        fault_point("relation.join")
        guard = active_guard()
        tracer = active_tracer()
        t0 = 0.0
        if tracer is not None:
            t0 = tracer.clock()
            metrics = tracer.metrics
            metrics.count("relation.join.calls")
            metrics.observe("relation.join.in_tuples", len(self.tuples) + len(other.tuples))
        if guard is not None:
            guard.note("relation.join")
        combined = self.schema + tuple(c for c in other.schema if c not in self.schema)
        out: List[GTuple] = []
        for a in self.tuples:
            if guard is not None:
                guard.tick("relation.join")
            wide_a = a.extend(combined)
            for b in other.tuples:
                merged = wide_a.merge(b.extend(combined).reorder(combined), combined)
                if merged is not None:
                    out.append(merged)
        result = Relation(self.theory, combined, out)
        if guard is not None:
            guard.charge_relation(result, "relation.join")
        if tracer is not None:
            metrics.observe("relation.join.out_tuples", len(result.tuples))
            metrics.observe("relation.join.seconds", tracer.clock() - t0)
        return result

    # ------------------------------------------------------------- comparisons

    def contains(self, other: "Relation") -> bool:
        """Pointset containment ``other included in self`` (exact)."""
        self._require_compatible(other)
        return other.difference(self).is_empty()

    def equivalent(self, other: "Relation") -> bool:
        """Pointset equality (exact, via both containments)."""
        return self.contains(other) and other.contains(self)

    def contains_point(self, values: Sequence) -> bool:
        """Membership of one rational point."""
        vals = [v if isinstance(v, Fraction) else Fraction(v) for v in values]
        return any(t.contains_point(vals) for t in self.tuples)

    # ------------------------------------------------------------ maintenance

    def simplify(self) -> "Relation":
        """Drop tuples subsumed by other tuples (containment absorption)."""
        kept = _absorb(list(self.tuples))
        tracer = active_tracer()
        if tracer is not None:
            metrics = tracer.metrics
            metrics.count("relation.simplify.calls")
            absorbed = len(self.tuples) - len(kept)
            if absorbed:
                metrics.count("relation.simplify.tuples_absorbed", absorbed)
                removed = sum(len(t.atoms) for t in self.tuples) - sum(
                    len(t.atoms) for t in kept
                )
                metrics.count("relation.simplify.atoms_removed", removed)
        return Relation(self.theory, self.schema, kept)

    def sample_points(self) -> List[Dict[str, Fraction]]:
        """One explicit rational point per generalized tuple."""
        return [t.sample_point() for t in self.tuples]


def _absorb(tuples: List[GTuple]) -> List[GTuple]:
    """Remove tuples whose conjunction is subsumed by another tuple's.

    ``t`` is subsumed by ``s`` when ``t`` entails every atom of ``s``
    (then the pointset of ``t`` is included in that of ``s``).
    """
    distinct: List[GTuple] = []
    for t in tuples:
        if t not in distinct:
            distinct.append(t)

    def subsumes(s: GTuple, t: GTuple) -> bool:
        return all(t.entails(a) for a in s.atoms)

    kept: List[GTuple] = []
    for i, t in enumerate(distinct):
        absorbed = False
        for j, s in enumerate(distinct):
            if i == j or not subsumes(s, t):
                continue
            # keep the earlier one when two tuples subsume each other
            if subsumes(t, s) and j > i:
                continue
            absorbed = True
            break
        if not absorbed:
            kept.append(t)
    return kept
