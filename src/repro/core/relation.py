"""Generalized (finitely representable) relations and their algebra.

A *generalized relation* ([KKR90]; paper Section 2) is a finite set of
generalized tuples over a common schema -- the disjunction of their
conjunctions, denoting a (possibly infinite) pointset in ``Q^k``.

:class:`Relation` provides the closed-form relational algebra the paper
relies on (Section 3, after [KKR90]): union, intersection, natural
join, projection (existential quantification), selection, renaming,
complement, and difference.  Every operation returns a new relation in
the same finitely-representable class -- this *closure* property is what
makes the relational calculus a constraint query language.

Complement distributes negation over the representation and is
exponential in the number of tuples in the worst case; ``difference``
and the containment tests route through it tuple-by-tuple with early
pruning.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.atoms import Op
from repro.core.gtuple import GTuple, Schema, check_schema
from repro.core.terms import Const, Term, Var
from repro.core.theory import ConstraintTheory, DenseOrderTheory, DENSE_ORDER
from repro.errors import SchemaError, TheoryError
from repro.obs.trace import active_tracer
from repro.parallel.context import active_execution_context
from repro.perf.cache import kernel_counters
from repro.perf.columnar import kernel_selector, merge_block, tuple_matrix
from repro.runtime.faults import fault_point
from repro.runtime.guard import active_guard

__all__ = ["Relation"]

#: the kernel-backend switch (one attribute read on the hot paths)
_KERNEL = kernel_selector()


class Relation:
    """A finitely representable relation: finite set of generalized tuples."""

    __slots__ = ("theory", "schema", "tuples")

    def __init__(
        self,
        theory: ConstraintTheory,
        schema: Sequence[str],
        tuples: Iterable[GTuple] = (),
    ) -> None:
        self.theory = theory
        self.schema: Schema = check_schema(schema)
        seen: Dict[GTuple, None] = {}
        for t in tuples:
            if t.schema != self.schema:
                raise SchemaError(f"tuple schema {t.schema} != relation schema {self.schema}")
            if t.theory is not theory and t.theory != theory:
                raise TheoryError("tuple theory differs from relation theory")
            seen.setdefault(t, None)
        self.tuples: Tuple[GTuple, ...] = tuple(seen)

    # ------------------------------------------------------------ construction

    @classmethod
    def _trusted(
        cls, theory: ConstraintTheory, schema: Schema, tuples: Iterable[GTuple]
    ) -> "Relation":
        """Internal fast-path constructor for algebra-produced parts.

        ``schema`` must already be a validated :data:`Schema` and every
        tuple must be known to match it (because it came out of this
        algebra over the same schema).  Skips the per-tuple schema and
        theory re-validation of ``__init__`` but keeps the dedup the
        fixpoint engines rely on; interning makes that dedup an
        identity-hash pass.
        """
        self = object.__new__(cls)
        self.theory = theory
        self.schema = schema
        self.tuples = tuple(dict.fromkeys(tuples))
        return self

    @classmethod
    def empty(cls, schema: Sequence[str], theory: ConstraintTheory = DENSE_ORDER) -> "Relation":
        """The empty relation over ``schema``."""
        return cls(theory, schema, ())

    @classmethod
    def universe(
        cls, schema: Sequence[str], theory: ConstraintTheory = DENSE_ORDER
    ) -> "Relation":
        """All of ``Q^k`` over ``schema``."""
        return cls(theory, schema, (GTuple.universe(theory, schema),))

    @classmethod
    def from_atoms(
        cls,
        schema: Sequence[str],
        disjuncts: Iterable[Iterable],
        theory: ConstraintTheory = DENSE_ORDER,
    ) -> "Relation":
        """Build from a DNF: an iterable of conjunctions (atom iterables)."""
        tuples = []
        for conj in disjuncts:
            made = GTuple.make(theory, schema, conj)
            if made is not None:
                tuples.append(made)
        return cls(theory, schema, tuples)

    @classmethod
    def from_points(
        cls,
        schema: Sequence[str],
        points: Iterable[Sequence],
        theory: ConstraintTheory = DENSE_ORDER,
    ) -> "Relation":
        """A classical finite relation: one point tuple per row."""
        return cls(theory, schema, [GTuple.point(theory, schema, p) for p in points])

    # -------------------------------------------------------------- inspection

    @property
    def arity(self) -> int:
        return len(self.schema)

    def is_empty(self) -> bool:
        """Emptiness of the denoted pointset (tuples are satisfiable)."""
        return not self.tuples

    def constants(self) -> FrozenSet[Fraction]:
        out: set = set()
        for t in self.tuples:
            out |= t.constants()
        return frozenset(out)

    def __len__(self) -> int:
        """Number of generalized tuples in the representation (not points)."""
        return len(self.tuples)

    def __iter__(self):
        return iter(self.tuples)

    def __repr__(self) -> str:
        cols = ", ".join(self.schema)
        return f"<Relation ({cols}) with {len(self.tuples)} generalized tuple(s)>"

    def pretty(self) -> str:
        """Multi-line rendering of the representation."""
        lines = [f"({', '.join(self.schema)}):"]
        if not self.tuples:
            lines.append("  false")
        for t in self.tuples:
            body = " and ".join(sorted(str(a) for a in t.atoms)) or "true"
            lines.append(f"  {body}")
        return "\n".join(lines)

    # -------------------------------------------------------------- set algebra

    def _require_compatible(self, other: "Relation") -> None:
        # identity fast path; theories are value objects (see ConstraintTheory)
        if self.theory is not other.theory and self.theory != other.theory:
            raise TheoryError("relations from different theories")
        if self.schema != other.schema:
            raise SchemaError(f"schema mismatch: {self.schema} vs {other.schema}")

    def union(self, other: "Relation") -> "Relation":
        self._require_compatible(other)
        return Relation._trusted(self.theory, self.schema, self.tuples + other.tuples)

    def intersection(self, other: "Relation") -> "Relation":
        self._require_compatible(other)
        out: List[GTuple] = []
        for a in self.tuples:
            for b in other.tuples:
                merged = a.merge(b, self.schema)
                if merged is not None:
                    out.append(merged)
        return Relation._trusted(self.theory, self.schema, out)

    def complement(self) -> "Relation":
        """The complement ``Q^k minus R`` in closed form.

        Negation of a DNF: conjunction over tuples of the disjunction of
        the negated atoms.  Worst case exponential in ``len(self)``;
        unsatisfiable branches are pruned as they are built.  An active
        :class:`~repro.runtime.guard.EvaluationGuard` is consulted per
        distribution stage, so blowups trip the deadline or tuple
        budget mid-operation instead of after it; an active
        :class:`~repro.obs.trace.Tracer` records in/out sizes and wall
        time (one context-variable read per call when disabled).
        """
        tracer = active_tracer()
        if tracer is None:
            return self._complement()
        t0 = tracer.clock()
        k0 = kernel_counters()
        m0 = _mem_mark(tracer)
        metrics = tracer.metrics
        metrics.count("relation.complement.calls")
        metrics.observe("relation.complement.in_tuples", len(self.tuples))
        # pre-execution estimate.  The worst-case DNF bound is the
        # product of per-tuple negated-disjunct counts (each atom
        # negates to at most two atoms over dense order), but per-stage
        # absorption keeps real outputs near-linear: complementing n
        # interval pieces yields about n+1 pieces, not 2^n.  Take the
        # smaller of the two figures and record which estimator fired,
        # so calibration can weight the linear regime separately from
        # the (rare) genuinely multiplicative one.
        total_atoms = sum(len(t.atoms) for t in self.tuples)
        product = 1
        for t in self.tuples:
            product *= max(1, 2 * len(t.atoms))
            if product > 10**12:
                product = 10**12
                break
        linear = 1 + 2 * total_atoms
        est, estimator = (
            (linear, "complement.linear")
            if linear <= product
            else (product, "complement.product")
        )
        result = self._complement()
        metrics.observe("relation.complement.out_tuples", len(result.tuples))
        seconds = tracer.clock() - t0
        metrics.observe("relation.complement.seconds", seconds)
        _ledger(tracer, "complement", k0, None,
                in_tuples=len(self.tuples), out_tuples=len(result.tuples),
                est_out=est, estimator=estimator,
                out_atoms=sum(len(t.atoms) for t in result.tuples),
                seconds=seconds, m0=m0)
        return result

    def _complement(self) -> "Relation":
        fault_point("relation.complement")
        guard = active_guard()
        if guard is not None:
            guard.note("relation.complement")
        partial: List[Optional[GTuple]] = [GTuple.universe(self.theory, self.schema)]
        # canonical iteration order: the conjunction-of-negations product
        # below charges the guard once per input tuple and early-exits
        # when the partial product empties, so its *accounting* (not
        # just its result set) depends on tuple order -- and parallel
        # join/project merges reorder tuples relative to serial.  Sort
        # by the same stable key _absorb uses so serial and sharded
        # runs charge identically for the same tuple multiset.
        for t in sorted(self.tuples, key=lambda t: sorted(str(a) for a in t.atoms)):
            if not t.atoms:  # a universe tuple: complement is empty
                return Relation._trusted(self.theory, self.schema, ())
            negated: List = []
            # sorted: t.atoms is a frozenset whose iteration order is
            # hash-salted; the complement's *tuple set* is order-
            # independent, but which duplicate representative survives
            # dedup (and hence the representation order downstream) is
            # not -- pin it so runs agree across PYTHONHASHSEED values
            # and shard merges
            for a in sorted(t.atoms, key=str):
                negated.extend(self.theory.negate_atom(a))
            grown: List[GTuple] = []
            for p in partial:
                if guard is not None:
                    guard.tick("relation.complement")
                for neg in negated:
                    ext = p.conjoin([neg])
                    if ext is not None:
                        grown.append(ext)
            if guard is not None:
                # charge before absorption: the quadratic subsumption
                # pass is itself expensive on a blown-up stage
                guard.on_tuples(len(grown), "relation.complement")
            partial = _absorb(grown)
            if not partial:
                return Relation._trusted(self.theory, self.schema, ())
        result = Relation._trusted(self.theory, self.schema, partial)
        if guard is not None:
            guard.check_atoms(result, "relation.complement")
        return result

    def difference(self, other: "Relation") -> "Relation":
        self._require_compatible(other)
        if other.is_empty() or self.is_empty():
            return self
        return self.intersection(other.complement())

    # ---------------------------------------------------------- relational ops

    def select(self, atoms: Iterable) -> "Relation":
        """Conjoin constraint atoms (over schema columns) to every tuple."""
        atoms = list(atoms)
        out = []
        for t in self.tuples:
            kept = t.conjoin(atoms)
            if kept is not None:
                out.append(kept)
        return Relation._trusted(self.theory, self.schema, out)

    def project(self, columns: Sequence[str]) -> "Relation":
        """Project onto ``columns`` (existentially eliminating the rest)."""
        target = check_schema(columns)
        extra = set(target) - set(self.schema)
        if extra:
            raise SchemaError(f"cannot project onto unknown columns {sorted(extra)}")
        victims = [c for c in self.schema if c not in target]
        current = list(self.tuples)
        if victims:
            fault_point("relation.project")
        guard = active_guard() if victims else None
        tracer = active_tracer() if victims else None
        if guard is not None:
            guard.note("relation.project")
        t0 = 0.0
        k0 = None
        m0 = None
        in_count = len(current)
        if tracer is not None:
            t0 = tracer.clock()
            k0 = kernel_counters()
            m0 = _mem_mark(tracer)
            metrics = tracer.metrics
            metrics.count("relation.project.calls")
            metrics.observe("relation.project.in_tuples", in_count)
        dispatch = None
        ctx = active_execution_context() if victims else None
        if ctx is not None and ctx.eligible(len(current)):
            from repro.parallel.backend import parallel_project

            reordered, dispatch = parallel_project(
                current, victims, target, ctx, guard, tracer
            )
        else:
            for column in victims:
                survivors: List[GTuple] = []
                for t in current:
                    survivors.extend(t.project_out_all(column))
                current = survivors
                if guard is not None:
                    guard.note("qe", len(survivors))
                    guard.on_tuples(len(survivors), "relation.project")
                    guard.tick("relation.project")
                if tracer is not None:
                    metrics.count("qe.eliminated_vars")
                    metrics.observe("qe.survivors", len(survivors))
            reordered = [t.reorder(target) for t in current]
        if tracer is not None:
            metrics.observe("relation.project.out_tuples", len(reordered))
            seconds = tracer.clock() - t0
            metrics.observe("relation.project.seconds", seconds)
            # pre-execution estimate: dense-order QE typically preserves
            # or shrinks the disjunct count, so input size is the
            # planner's working figure (not a hard bound)
            _ledger(tracer, "project", k0, dispatch,
                    in_tuples=in_count, out_tuples=len(reordered),
                    est_out=in_count, estimator="project.input",
                    out_atoms=sum(len(t.atoms) for t in reordered),
                    seconds=seconds, m0=m0)
        return Relation._trusted(self.theory, target, reordered)

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """Rename columns (missing entries = identity)."""
        target = check_schema(tuple(mapping.get(c, c) for c in self.schema))
        return Relation._trusted(
            self.theory, target, [t.rename(mapping) for t in self.tuples]
        )

    def extend(self, schema: Sequence[str]) -> "Relation":
        """Pad with unconstrained columns to a wider schema."""
        target = check_schema(schema)
        return Relation._trusted(
            self.theory, target, [t.extend(target) for t in self.tuples]
        )

    def join(self, other: "Relation") -> "Relation":
        """Natural join on shared column names.

        When both sides are large enough and some shared column is
        pinned to a constant on most tuples (the classical-tuple case:
        graph edges, point sets), the pairing is driven by a partition
        index on that column -- only buckets with compatible constants
        are paired, plus the unpinned remainder.  Skipped pairs are
        exactly those whose merge would be unsatisfiable (two distinct
        constants forced equal), so the result is identical to the
        nested loop, which remains the transparent fallback.
        """
        if self.theory is not other.theory and self.theory != other.theory:
            raise TheoryError("relations from different theories")
        fault_point("relation.join")
        guard = active_guard()
        tracer = active_tracer()
        t0 = 0.0
        k0 = None
        m0 = None
        if tracer is not None:
            t0 = tracer.clock()
            k0 = kernel_counters()
            m0 = _mem_mark(tracer)
            metrics = tracer.metrics
            metrics.count("relation.join.calls")
            metrics.observe("relation.join.in_tuples", len(self.tuples) + len(other.tuples))
        if guard is not None:
            guard.note("relation.join")
        combined = self.schema + tuple(c for c in other.schema if c not in self.schema)
        # widen the right side once, not once per pair
        wide_b = [b.extend(combined).reorder(combined) for b in other.tuples]
        partition = _join_partition(self, other)
        if partition is not None and tracer is not None:
            metrics.count("relation.join.indexed")
        est = 0
        if tracer is not None:
            # the planner-grade pre-execution estimate: candidate pairs
            # under the partition index (each considered pair yields at
            # most one output tuple), |L|×|R| without one
            if partition is None:
                est = len(self.tuples) * len(wide_b)
            else:
                buckets_e, unpinned_e, pins_e = partition
                nb, nu = len(wide_b), len(unpinned_e)
                for pin in pins_e:
                    est += nb if pin is None else len(buckets_e.get(pin, ())) + nu
        out: List[GTuple] = []
        considered = 0
        dispatch = None
        ctx = active_execution_context()
        if ctx is not None and wide_b and ctx.eligible(len(self.tuples)):
            from repro.parallel.backend import parallel_join

            out, considered, dispatch = parallel_join(
                self.tuples, wide_b, combined, partition, ctx, guard
            )
        else:
            blocked = _KERNEL.columnar and isinstance(self.theory, DenseOrderTheory)
            for ai, a in enumerate(self.tuples):
                if guard is not None:
                    guard.tick("relation.join")
                wide_a = a.extend(combined)
                if partition is None:
                    matches: Iterable[int] = range(len(wide_b))
                else:
                    buckets, unpinned, pins_a = partition
                    pin = pins_a[ai]
                    if pin is None:
                        matches = range(len(wide_b))
                    else:
                        # preserve the nested loop's right-side order
                        matches = sorted(buckets.get(pin, ()) + unpinned)
                if blocked:
                    # columnar: one blocked merge per left tuple (same
                    # pairs, same order, same cache traffic as the
                    # per-pair loop below)
                    considered += len(matches)
                    out.extend(
                        merge_block(self.theory, wide_a, wide_b, matches, combined)
                    )
                    continue
                for bi in matches:
                    considered += 1
                    merged = wide_a.merge(wide_b[bi], combined)
                    if merged is not None:
                        out.append(merged)
        result = Relation._trusted(self.theory, combined, out)
        if guard is not None:
            guard.charge_relation(result, "relation.join")
        if tracer is not None:
            skipped = len(self.tuples) * len(other.tuples) - considered
            if skipped:
                metrics.count("relation.join.pairs_skipped", skipped)
            metrics.observe("relation.join.out_tuples", len(result.tuples))
            seconds = tracer.clock() - t0
            metrics.observe("relation.join.seconds", seconds)
            _ledger(tracer, "join", k0, dispatch,
                    in_tuples=len(self.tuples) + len(other.tuples),
                    out_tuples=len(result.tuples), est_out=est,
                    estimator="join.cross" if partition is None else "join.indexed",
                    out_atoms=sum(len(t.atoms) for t in result.tuples),
                    seconds=seconds, m0=m0)
        return result

    # ------------------------------------------------------------- comparisons

    def contains(self, other: "Relation") -> bool:
        """Pointset containment ``other included in self`` (exact)."""
        self._require_compatible(other)
        return other.difference(self).is_empty()

    def equivalent(self, other: "Relation") -> bool:
        """Pointset equality (exact, via both containments)."""
        return self.contains(other) and other.contains(self)

    def contains_point(self, values: Sequence) -> bool:
        """Membership of one rational point."""
        vals = [v if isinstance(v, Fraction) else Fraction(v) for v in values]
        return any(t.contains_point(vals) for t in self.tuples)

    # ------------------------------------------------------------ maintenance

    def simplify(self) -> "Relation":
        """Drop tuples subsumed by other tuples (containment absorption)."""
        kept = _absorb(list(self.tuples))
        tracer = active_tracer()
        if tracer is not None:
            metrics = tracer.metrics
            metrics.count("relation.simplify.calls")
            absorbed = len(self.tuples) - len(kept)
            if absorbed:
                metrics.count("relation.simplify.tuples_absorbed", absorbed)
                removed = sum(len(t.atoms) for t in self.tuples) - sum(
                    len(t.atoms) for t in kept
                )
                metrics.count("relation.simplify.atoms_removed", removed)
        return Relation._trusted(self.theory, self.schema, kept)

    def sample_points(self) -> List[Dict[str, Fraction]]:
        """One explicit rational point per generalized tuple."""
        return [t.sample_point() for t in self.tuples]


def _mem_mark(tracer):
    """Open a memory frame for one operator call (``None`` unless the
    tracer carries a :class:`~repro.obs.memory.MemoryProfiler`)."""
    memory = tracer.memory
    return memory.push() if memory is not None else None


def _ledger(tracer, op: str, k0: dict, dispatch: Optional[dict], *,
            in_tuples: int, out_tuples: int, est_out: int, out_atoms: int,
            seconds: float, estimator: str = "", m0=None) -> None:
    """Append one :class:`~repro.obs.ledger.CostRecord` to the active
    tracer's ledger.

    ``k0`` is the :func:`kernel_counters` snapshot taken in the
    operator's preamble: the delta since then is this call's share of
    the process-wide entailment-cache traffic.  ``dispatch`` is the
    ``dispatch_info`` dict a parallel driver returned (``None`` for a
    serial call); its stitched worker cache deltas are added on top so
    process-pool runs attribute worker-side cache work to the operator
    that dispatched it.  ``m0`` is the :func:`_mem_mark` frame from the
    same preamble: closing it here attributes the call's allocation to
    the record's memory fields (all zero without ``--memory``).
    """
    k1 = kernel_counters()
    info = dispatch or {}
    memory = {}
    if m0 is not None and tracer.memory is not None:
        measured = tracer.memory.pop(m0)
        memory = {
            "alloc_blocks": measured.get("mem_alloc_blocks", 0),
            "alloc_bytes": measured.get("mem_alloc_bytes", 0),
            "peak_bytes": measured.get("mem_peak_bytes", 0),
        }
    tracer.ledger.add(
        op,
        in_tuples=in_tuples,
        out_tuples=out_tuples,
        est_out=est_out,
        out_atoms=out_atoms,
        cache_hits=k1["cache.hits"] - k0["cache.hits"] + info.get("cache_hits", 0),
        cache_misses=(
            k1["cache.misses"] - k0["cache.misses"] + info.get("cache_misses", 0)
        ),
        seconds=seconds,
        shards=info.get("shards", 0),
        skew=info.get("skew", 1.0),
        parallel=dispatch is not None,
        estimator=estimator,
        **memory,
    )


def _absorb(tuples: List[GTuple]) -> List[GTuple]:
    """Remove tuples whose conjunction is subsumed by another tuple's.

    ``t`` is subsumed by ``s`` when ``t`` entails every atom of ``s``
    (then the pointset of ``t`` is included in that of ``s``).

    The pairwise pass is still quadratic in the worst case, but most
    candidate pairs are dismissed without touching the entailment
    kernel: duplicates are hash-deduplicated up front, a universe tuple
    short-circuits the whole pass, and (for the dense-order theory) a
    pair is skipped when the candidate subsumer mentions a variable the
    other tuple leaves unconstrained, or accepted when its atoms are a
    syntactic subset.
    """
    tracer = active_tracer()
    t0 = 0.0
    k0 = None
    m0 = None
    if tracer is not None:
        t0 = tracer.clock()
        k0 = kernel_counters()
        m0 = _mem_mark(tracer)
    distinct: List[GTuple] = list(dict.fromkeys(tuples))
    dispatch = None
    kept: Optional[List[GTuple]] = None
    if len(distinct) <= 1:
        kept = distinct
    else:
        for t in distinct:
            if not t.atoms:
                # a universe tuple subsumes every other tuple and is
                # subsumed by none, so the pairwise pass reduces to [t]
                kept = [t]
                break
    if kept is None:
        ctx = active_execution_context()
        if ctx is not None and ctx.eligible(len(distinct)):
            from repro.parallel.backend import parallel_absorb

            kept, dispatch = parallel_absorb(distinct, ctx)
        else:
            kept = [distinct[i] for i in _absorb_survivors(distinct, 0, len(distinct))]
    if tracer is not None:
        # pre-execution estimate: absorption only removes tuples, so
        # the deduplicated input size is a hard upper bound
        _ledger(tracer, "absorb", k0, dispatch,
                in_tuples=len(tuples), out_tuples=len(kept),
                est_out=len(distinct), estimator="absorb.dedup",
                out_atoms=sum(len(t.atoms) for t in kept),
                seconds=tracer.clock() - t0, m0=m0)
    return kept


def _absorb_survivors(distinct: List[GTuple], start: int, stop: int) -> List[int]:
    """Indices in ``[start, stop)`` of tuples not absorbed by any other.

    ``distinct`` must be deduplicated, non-trivial (no universe tuple,
    length > 1) and is never mutated.  Whether index ``i`` survives
    depends only on the full list, not on other survival decisions, so
    disjoint ranges can be decided independently (the parallel backend
    fans them out) and concatenated in order to reproduce the full
    serial pass.
    """
    theory = distinct[0].theory
    dense = isinstance(theory, DenseOrderTheory)
    var_sets: List[FrozenSet[Var]] = (
        [theory.conjunction_variables(t.atoms) for t in distinct] if dense else []
    )

    def subsumes(si: int, ti: int) -> bool:
        s, t = distinct[si], distinct[ti]
        if dense:
            # an atom mentioning a variable absent from t's conjunction
            # is never entailed by it (that variable is unconstrained)
            if not var_sets[si] <= var_sets[ti]:
                return False
            # entailment is reflexive, so a syntactic subset subsumes
            if s.atoms <= t.atoms:
                return True
            if _KERNEL.columnar:
                # one closure per target tuple, shared across every
                # candidate atom of every candidate subsumer (same
                # laziness and cache traffic as t.entails; falls
                # through when t's entailer is not matrix-backed)
                mat = tuple_matrix(t)
                if mat is not None:
                    return mat.implies_all(s.atoms)
        return all(t.entails(a) for a in s.atoms)

    def stable_key(i: int) -> List[str]:
        return sorted(str(a) for a in distinct[i].atoms)

    kept: List[int] = []
    for i in range(start, stop):
        absorbed = False
        for j in range(len(distinct)):
            if i == j or not subsumes(j, i):
                continue
            if subsumes(i, j):
                # mutual subsumption: the tuples denote the same
                # pointset.  Keep the one with the smaller canonical
                # rendering -- an input-order-independent tie-break, so
                # the surviving representative does not depend on how
                # (or in which shard) the list was assembled.  Dense-
                # order tuples are canonicalized, so distinct-but-
                # equivalent tuples cannot arise there and this branch
                # only governs other theories.
                ki, kj = stable_key(i), stable_key(j)
                if (ki, i) < (kj, j):
                    continue
            absorbed = True
            break
        if not absorbed:
            kept.append(i)
    return kept


#: join uses the partition index only when both sides have at least this
#: many tuples (below that the nested loop wins on setup cost) ...
_JOIN_INDEX_MIN_TUPLES = 4
#: ... and at least this fraction of each side pins the shared column
_JOIN_INDEX_MIN_PINNED = 0.5


def _pinned_value(t: GTuple, var: Var) -> Optional[Fraction]:
    """The constant ``var`` is equated to in ``t``, if any."""
    for a in t.atoms:
        if a.op is Op.EQ:
            if a.left == var and isinstance(a.right, Const):
                return a.right.value
            if a.right == var and isinstance(a.left, Const):
                return a.left.value
    return None


def _join_partition(left: "Relation", right: "Relation"):
    """A partition index for ``left.join(right)``, or None.

    Picks the shared column most often pinned to a constant on both
    sides and groups the right side by that constant.  A left tuple
    pinning the column to ``v`` only needs the ``v`` bucket plus the
    unpinned remainder: any other bucket forces two distinct constants
    equal, so those merges are unsatisfiable and contribute nothing.
    Returns ``(buckets, unpinned, left_pins)`` with right-side tuples
    referred to by index.
    """
    if not isinstance(left.theory, DenseOrderTheory):
        return None
    if (
        len(left.tuples) < _JOIN_INDEX_MIN_TUPLES
        or len(right.tuples) < _JOIN_INDEX_MIN_TUPLES
    ):
        return None
    right_cols = set(right.schema)
    shared = [c for c in left.schema if c in right_cols]
    if not shared:
        return None
    best = None
    for col in shared:
        var = Var(col)
        pins_a = [_pinned_value(t, var) for t in left.tuples]
        na = sum(p is not None for p in pins_a)
        if na < _JOIN_INDEX_MIN_PINNED * len(left.tuples):
            continue
        pins_b = [_pinned_value(t, var) for t in right.tuples]
        nb = sum(p is not None for p in pins_b)
        if nb < _JOIN_INDEX_MIN_PINNED * len(right.tuples):
            continue
        score = na + nb
        if best is None or score > best[0]:
            best = (score, pins_a, pins_b)
    if best is None:
        return None
    _, pins_a, pins_b = best
    buckets: Dict[Fraction, List[int]] = {}
    unpinned: List[int] = []
    for bi, pin in enumerate(pins_b):
        if pin is None:
            unpinned.append(bi)
        else:
            buckets.setdefault(pin, []).append(bi)
    return (
        {value: tuple(indices) for value, indices in buckets.items()},
        tuple(unpinned),
        pins_a,
    )
