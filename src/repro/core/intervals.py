"""Canonical one-dimensional form: intervals over Q.

The paper (Section 2) observes that unary dense-order relations are
finite unions of points and open/half-open/closed intervals with
rational or infinite endpoints, and that this yields an efficient
encoding ("four constants along with a flag indicating the shape").
:class:`Interval` and :class:`IntervalSet` implement that normal form:

* an :class:`IntervalSet` is a sorted tuple of disjoint, non-adjacent
  intervals -- a *canonical* representation, so two equal unary
  pointsets always compare equal structurally;
* conversions to and from unary :class:`~repro.core.relation.Relation`
  values connect the normal form with the general engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.atoms import Atom, Op, eq, le, lt
from repro.core.gtuple import GTuple
from repro.core.relation import Relation
from repro.core.terms import Const, Var, as_fraction
from repro.core.theory import DENSE_ORDER
from repro.errors import SchemaError, TheoryError

__all__ = ["Interval", "IntervalSet"]


@dataclass(frozen=True)
class Interval:
    """An interval over Q; ``None`` endpoints mean -inf / +inf.

    Infinite endpoints are always open.  Use the classmethod
    constructors; the raw constructor does not normalize.
    """

    lo: Optional[Fraction]
    hi: Optional[Fraction]
    lo_open: bool
    hi_open: bool

    # ------------------------------------------------------------ constructors

    @classmethod
    def make(
        cls,
        lo: Optional[object],
        hi: Optional[object],
        lo_open: bool = False,
        hi_open: bool = False,
    ) -> "Interval":
        lo_f = None if lo is None else as_fraction(lo)
        hi_f = None if hi is None else as_fraction(hi)
        if lo_f is None:
            lo_open = True
        if hi_f is None:
            hi_open = True
        return cls(lo_f, hi_f, lo_open, hi_open)

    @classmethod
    def point(cls, value: object) -> "Interval":
        v = as_fraction(value)
        return cls(v, v, False, False)

    @classmethod
    def open(cls, lo: object, hi: object) -> "Interval":
        return cls.make(lo, hi, True, True)

    @classmethod
    def closed(cls, lo: object, hi: object) -> "Interval":
        return cls.make(lo, hi, False, False)

    @classmethod
    def all(cls) -> "Interval":
        return cls(None, None, True, True)

    @classmethod
    def less_than(cls, value: object) -> "Interval":
        return cls.make(None, value, True, True)

    @classmethod
    def at_most(cls, value: object) -> "Interval":
        return cls.make(None, value, True, False)

    @classmethod
    def greater_than(cls, value: object) -> "Interval":
        return cls.make(value, None, True, True)

    @classmethod
    def at_least(cls, value: object) -> "Interval":
        return cls.make(value, None, False, True)

    # -------------------------------------------------------------- predicates

    def is_empty(self) -> bool:
        if self.lo is None or self.hi is None:
            return False
        if self.lo > self.hi:
            return True
        if self.lo == self.hi:
            return self.lo_open or self.hi_open
        return False

    def is_point(self) -> bool:
        return (
            self.lo is not None
            and self.lo == self.hi
            and not self.lo_open
            and not self.hi_open
        )

    def is_bounded(self) -> bool:
        return self.lo is not None and self.hi is not None

    def contains(self, value: object) -> bool:
        v = as_fraction(value)
        if self.lo is not None and (v < self.lo or (v == self.lo and self.lo_open)):
            return False
        if self.hi is not None and (v > self.hi or (v == self.hi and self.hi_open)):
            return False
        return True

    # -------------------------------------------------------------- operations

    def intersection(self, other: "Interval") -> "Interval":
        if self.lo is None:
            lo, lo_open = other.lo, other.lo_open
        elif other.lo is None or self.lo > other.lo:
            lo, lo_open = self.lo, self.lo_open
        elif self.lo < other.lo:
            lo, lo_open = other.lo, other.lo_open
        else:
            lo, lo_open = self.lo, self.lo_open or other.lo_open
        if self.hi is None:
            hi, hi_open = other.hi, other.hi_open
        elif other.hi is None or self.hi < other.hi:
            hi, hi_open = self.hi, self.hi_open
        elif self.hi > other.hi:
            hi, hi_open = other.hi, other.hi_open
        else:
            hi, hi_open = self.hi, self.hi_open or other.hi_open
        return Interval(lo, hi, lo_open if lo is not None else True, hi_open if hi is not None else True)

    def touches(self, other: "Interval") -> bool:
        """Do the two intervals overlap or abut without a gap?

        True when their union is a single interval.
        """
        if self.is_empty() or other.is_empty():
            return False
        first, second = (self, other) if _start_key(self) <= _start_key(other) else (other, self)
        if first.hi is None:
            return True
        if second.lo is None:
            return True
        if second.lo < first.hi:
            return True
        if second.lo == first.hi:
            return not (first.hi_open and second.lo_open)
        return False

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both (callers ensure touching)."""
        if _start_key(self) <= _start_key(other):
            lo, lo_open = self.lo, self.lo_open
        else:
            lo, lo_open = other.lo, other.lo_open
        if _end_key(self) >= _end_key(other):
            hi, hi_open = self.hi, self.hi_open
        else:
            hi, hi_open = other.hi, other.hi_open
        return Interval(lo, hi, lo_open, hi_open)

    def complement(self) -> List["Interval"]:
        out: List[Interval] = []
        if self.is_empty():
            return [Interval.all()]
        if self.lo is not None:
            out.append(Interval(None, self.lo, True, not self.lo_open))
        if self.hi is not None:
            out.append(Interval(self.hi, None, not self.hi_open, True))
        return [i for i in out if not i.is_empty()]

    # ------------------------------------------------------------- conversion

    def to_atoms(self, column: str) -> List[Atom]:
        """The dense-order constraints describing this interval."""
        x = Var(column)
        if self.is_point():
            made = eq(x, self.lo)
            return [made] if not isinstance(made, bool) else []
        atoms: List[Atom] = []
        if self.lo is not None:
            made = lt(self.lo, x) if self.lo_open else le(self.lo, x)
            if not isinstance(made, bool):
                atoms.append(made)
        if self.hi is not None:
            made = lt(x, self.hi) if self.hi_open else le(x, self.hi)
            if not isinstance(made, bool):
                atoms.append(made)
        return atoms

    def __str__(self) -> str:
        left = "(" if self.lo_open else "["
        right = ")" if self.hi_open else "]"
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"{left}{lo}, {hi}{right}"


def _start_key(interval: Interval) -> Tuple:
    if interval.lo is None:
        return (0, Fraction(0), 0)
    return (1, interval.lo, 1 if interval.lo_open else 0)


def _end_key(interval: Interval) -> Tuple:
    if interval.hi is None:
        return (1, Fraction(0), 0)
    return (0, interval.hi, 0 if interval.hi_open else 1)


class IntervalSet:
    """A canonical finite union of intervals (sorted, disjoint, merged)."""

    __slots__ = ("intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        pending = [i for i in intervals if not i.is_empty()]
        pending.sort(key=_start_key)
        merged: List[Interval] = []
        for interval in pending:
            if merged and merged[-1].touches(interval):
                merged[-1] = merged[-1].hull(interval)
            else:
                merged.append(interval)
        self.intervals: Tuple[Interval, ...] = tuple(merged)

    # -------------------------------------------------------------- basics

    @classmethod
    def all(cls) -> "IntervalSet":
        return cls([Interval.all()])

    @classmethod
    def empty(cls) -> "IntervalSet":
        return cls([])

    @classmethod
    def of_points(cls, values: Iterable[object]) -> "IntervalSet":
        return cls([Interval.point(v) for v in values])

    def is_empty(self) -> bool:
        return not self.intervals

    def contains(self, value: object) -> bool:
        return any(i.contains(value) for i in self.intervals)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntervalSet) and self.intervals == other.intervals

    def __hash__(self) -> int:
        return hash(self.intervals)

    def __iter__(self):
        return iter(self.intervals)

    def __len__(self) -> int:
        return len(self.intervals)

    def __str__(self) -> str:
        return " u ".join(map(str, self.intervals)) if self.intervals else "{}"

    def __repr__(self) -> str:
        return f"IntervalSet({self})"

    # ---------------------------------------------------------------- algebra

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(self.intervals + other.intervals)

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        out = []
        for a in self.intervals:
            for b in other.intervals:
                out.append(a.intersection(b))
        return IntervalSet(out)

    def complement(self) -> "IntervalSet":
        result = IntervalSet.all()
        for interval in self.intervals:
            result = result.intersection(IntervalSet(interval.complement()))
        return result

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        return self.intersection(other.complement())

    # ------------------------------------------------------------- conversion

    @classmethod
    def from_relation(cls, relation: Relation) -> "IntervalSet":
        """Canonical form of a unary dense-order relation."""
        if relation.arity != 1:
            raise SchemaError("IntervalSet.from_relation requires a unary relation")
        column = relation.schema[0]
        x = Var(column)
        intervals = []
        for t in relation.tuples:
            lo: Optional[Fraction] = None
            hi: Optional[Fraction] = None
            lo_open = True
            hi_open = True
            for a in t.atoms:
                if a.op is Op.EQ:
                    value = a.right.value if isinstance(a.right, Const) else a.left.value
                    intervals.append(Interval.point(value))
                    lo = hi = None
                    break
                strict = a.op is Op.LT
                if a.left == x:  # x < c or x <= c
                    bound = a.right.value
                    if hi is None or bound < hi or (bound == hi and strict):
                        hi, hi_open = bound, strict
                else:  # c < x or c <= x
                    bound = a.left.value
                    if lo is None or bound > lo or (bound == lo and strict):
                        lo, lo_open = bound, strict
            else:
                intervals.append(Interval(lo, hi, lo_open if lo is not None else True, hi_open if hi is not None else True))
        return cls(intervals)

    def to_relation(self, column: str = "x") -> Relation:
        """Back to a unary generalized relation."""
        tuples = []
        for interval in self.intervals:
            made = GTuple.make(DENSE_ORDER, (column,), interval.to_atoms(column))
            if made is not None:
                tuples.append(made)
        return Relation(DENSE_ORDER, (column,), tuples)
