"""Sample-point (o-minimal) evaluation: an independent semantics oracle.

Truth of a dense-order formula at a point depends only on the point's
*order type* relative to the constants in scope: every definable subset
of Q (with parameters) is a finite union of intervals whose endpoints
come from those constants.  A quantifier can therefore be decided by
testing finitely many *sample points* -- one per 1-D cell of the current
constant set: each constant itself, a midpoint between consecutive
constants, and one point below the minimum and above the maximum.

This gives a second, structurally unrelated implementation of FO
semantics.  It is exponential in quantifier depth and only used as a
cross-check oracle for the closed-form evaluator (property-based tests)
and as a reference semantics for small instances.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional

from repro.core.database import Database
from repro.core.formula import (
    And,
    Constraint,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    RelationAtom,
    _Boolean,
)
from repro.core.terms import Const, Var
from repro.errors import EvaluationError

__all__ = ["sample_points", "eval_at", "evaluate_sentence"]


def sample_points(constants: Iterable[Fraction]) -> List[Fraction]:
    """One representative rational per 1-D cell of the constant set.

    For constants ``c1 < ... < cm`` the cells are ``(-inf, c1), [c1],
    (c1, c2), ..., [cm], (cm, +inf)``; we return ``c1 - 1``, each
    ``ci``, each midpoint, and ``cm + 1``.  With no constants at all the
    single cell is all of Q and ``0`` represents it.
    """
    ordered = sorted(set(constants))
    if not ordered:
        return [Fraction(0)]
    points: List[Fraction] = [ordered[0] - 1]
    for i, c in enumerate(ordered):
        points.append(c)
        if i + 1 < len(ordered):
            points.append((c + ordered[i + 1]) / 2)
    points.append(ordered[-1] + 1)
    return points


def eval_at(
    formula: Formula,
    database: Optional[Database] = None,
    assignment: Optional[Mapping[Var, Fraction]] = None,
) -> bool:
    """Truth of ``formula`` under a total assignment of its free variables.

    Quantifiers are decided by recursive sampling: the candidate values
    for a quantified variable are the sample points of the constants of
    the formula and database *plus all currently assigned values* (the
    parameters refine the cell decomposition).
    """
    db = database if database is not None else Database()
    env: Dict[Var, Fraction] = dict(assignment or {})
    missing = formula.free_variables() - set(env)
    if missing:
        names = ", ".join(sorted(v.name for v in missing))
        raise EvaluationError(f"unassigned free variables: {names}")
    base_constants = set(formula.constants()) | set(db.constants())
    return _eval_at(formula, db, env, frozenset(base_constants))


def evaluate_sentence(formula: Formula, database: Optional[Database] = None) -> bool:
    """Truth of a sentence under the sampling semantics."""
    return eval_at(formula, database, {})


def _eval_at(
    formula: Formula,
    db: Database,
    env: Dict[Var, Fraction],
    base_constants: FrozenSet[Fraction],
) -> bool:
    if isinstance(formula, _Boolean):
        return formula.value

    if isinstance(formula, Constraint):
        return formula.atom.evaluate(env)

    if isinstance(formula, RelationAtom):
        values = []
        for arg in formula.args:
            if isinstance(arg, Const):
                values.append(arg.value)
            else:
                values.append(env[arg])
        return db[formula.name].contains_point(values)

    if isinstance(formula, And):
        return all(_eval_at(s, db, env, base_constants) for s in formula.subs)

    if isinstance(formula, Or):
        return any(_eval_at(s, db, env, base_constants) for s in formula.subs)

    if isinstance(formula, Not):
        return not _eval_at(formula.sub, db, env, base_constants)

    if isinstance(formula, (Exists, ForAll)):
        want_any = isinstance(formula, Exists)
        return _eval_quantifier(
            list(formula.variables), formula.sub, db, env, base_constants, want_any
        )

    raise EvaluationError(f"cannot evaluate formula node {type(formula).__name__}")


def _eval_quantifier(
    variables: List[Var],
    body: Formula,
    db: Database,
    env: Dict[Var, Fraction],
    base_constants: FrozenSet[Fraction],
    want_any: bool,
) -> bool:
    if not variables:
        return _eval_at(body, db, env, base_constants)
    head, rest = variables[0], variables[1:]
    in_scope = set(base_constants) | set(env.values())
    for candidate in sample_points(in_scope):
        inner = dict(env)
        inner[head] = candidate
        result = _eval_quantifier(rest, body, db, inner, base_constants, want_any)
        if result == want_any:
            return want_any
    return not want_any
