"""Terms of the dense-order constraint language.

The language of the paper (Section 2) is first-order logic over the
structure ``Q = (Q, <=)`` extended with one constant symbol per rational
number.  Terms are therefore either *variables* or *rational constants*.
All arithmetic is exact: constants are :class:`fractions.Fraction`.

The linear language FO+ (Section 4) adds terms built with ``+``; those
live in :mod:`repro.linear.latoms` and reuse these leaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Union

from repro.errors import TheoryError

__all__ = ["Var", "Const", "Term", "TermLike", "as_term", "as_fraction", "term_key"]


@dataclass(frozen=True, order=True)
class Var:
    """A first-order variable, identified by name."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise TheoryError("variable name must be non-empty")
        object.__setattr__(self, "_hash", hash(("var", self.name)))

    def __hash__(self) -> int:  # cached: terms are hashed hot
        return self._hash

    def __reduce__(self):
        # rebuild through the constructor: the cached hash is salted
        # (PYTHONHASHSEED), so it must be recomputed in the unpickling
        # process rather than shipped across a process boundary
        return (Var, (self.name,))

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class Const:
    """A rational constant (exact)."""

    value: Fraction

    def __post_init__(self) -> None:
        if not isinstance(self.value, Fraction):
            object.__setattr__(self, "value", as_fraction(self.value))
        object.__setattr__(self, "_hash", hash(("const", self.value)))

    def __hash__(self) -> int:  # cached: Fraction.__hash__ is slow
        return self._hash

    def __reduce__(self):
        # recompute the cached hash on unpickle (see Var.__reduce__)
        return (Const, (self.value,))

    def __str__(self) -> str:
        return str(self.value)


Term = Union[Var, Const]
#: Anything accepted where a term is expected: a term, a variable name,
#: or an exact number.
TermLike = Union[Term, str, int, Fraction]


def as_fraction(value: object) -> Fraction:
    """Coerce ``value`` to an exact :class:`Fraction`.

    Floats are rejected: silently converting them would smuggle binary
    rounding into an exact-arithmetic engine.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):
        raise TheoryError("booleans are not rational constants")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, str):
        return Fraction(value)
    raise TheoryError(
        f"cannot interpret {value!r} as an exact rational; "
        "use int, Fraction, or a numeric string"
    )


def as_term(value: TermLike) -> Term:
    """Coerce ``value`` to a :class:`Var` or :class:`Const`.

    Strings become variables; ints and Fractions become constants.
    """
    if isinstance(value, (Var, Const)):
        return value
    if isinstance(value, str):
        return Var(value)
    return Const(as_fraction(value))


def term_key(term: Term) -> tuple:
    """A total-order key over mixed Var/Const terms (vars first)."""
    if isinstance(term, Var):
        return (0, term.name)
    return (1, term.value)


def substitute_term(term: Term, mapping: Mapping[Var, Term]) -> Term:
    """Apply a variable substitution to a single term."""
    if isinstance(term, Var):
        return mapping.get(term, term)
    return term
