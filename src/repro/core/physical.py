"""Physical planning: per-operator serial-vs-parallel dispatch.

The logical layers (:mod:`repro.core.rules`, :mod:`repro.core.costmodel`)
decide *what* to compute; this module decides *how*: for every Join,
Project, and Absorb node it compares the cost model's serial price
against the modeled sharded price over candidate worker counts and
picks the cheaper side — replacing the old all-or-nothing ``--parallel``
switch (and the blunt single-CPU host check that papered over its
1-core regression).  With ``--parallel`` the CLI now passes an
:class:`~repro.parallel.context.ExecutionContext` as a *capability*;
the planner decides where it is actually used.

* :func:`plan_physical` -- a :class:`Decision` per parallelizable node
  (plan nodes are value objects, so the map is keyed by the node);
* :func:`execute_plan` -- a plan executor that activates the execution
  context only around nodes whose decision says parallel (temporarily
  pinning the context's worker count and shard strategy to the
  decision), and memoizes ``Shared`` subtrees so duplicated subplans
  evaluate once;
* :class:`QueryPlanner` -- the facade the CLI and the Datalog engine
  use: ``--optimize`` mode, logical-plan cache, ``planner.*`` metrics,
  ``planner.decision`` log records, and a ``planner.plan`` span for
  trace provenance;
* :func:`render_plan` -- the ``repro plan`` listing: one line per node
  with estimated rows, modeled cost, and the dispatch verdict.

Equivalence is the whole contract: a planned run must produce a
relation equivalent to the unplanned evaluator's, and planned-serial
vs planned-parallel of the *same* plan must agree on guard counters —
both pinned by ``tests/parallel/test_planned_differential.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.costmodel import CostModel, PlanEstimate, estimate_plan
from repro.core.database import Database
from repro.core.evaluator import _common_schema
from repro.core.planner import (
    Absorb,
    Complement,
    ConstraintScan,
    Empty,
    Join,
    Plan,
    Project,
    Scan,
    Select,
    Shared,
    Union,
    Universe,
    compile_formula,
    execute as _execute_serial_node,
)
from repro.core.relation import Relation
from repro.core.theory import ConstraintTheory, DENSE_ORDER
from repro.errors import EvaluationError

__all__ = [
    "Decision",
    "plan_physical",
    "execute_plan",
    "QueryPlanner",
    "render_plan",
    "PARALLEL_OPS",
]

#: plan nodes with a sharded kernel behind them
PARALLEL_OPS = (Join, Project, Absorb)

#: modeled parallel cost must beat serial by this factor before the
#: planner commits to dispatch (process pools have variance the model
#: does not capture; a marginal win is not worth it)
_DISPATCH_MARGIN = 1.25

#: candidate worker counts are powers of two up to the pool size
_MIN_PARALLEL_ROWS = 4.0


@dataclass
class Decision:
    """One node's dispatch verdict.

    ``est_serial`` / ``est_parallel`` are modeled seconds for this
    node alone; ``reason`` is a short human-readable justification
    rendered by ``repro plan`` and logged as ``planner.decision``.
    """

    label: str
    parallel: bool
    workers: int
    strategy: str
    est_serial: float
    est_parallel: float
    reason: str

    def as_attrs(self) -> dict:
        return {
            "node": self.label,
            "parallel": self.parallel,
            "workers": self.workers,
            "strategy": self.strategy,
            "est_serial": round(self.est_serial, 6),
            "est_parallel": round(self.est_parallel, 6),
            "reason": self.reason,
        }


def _candidate_workers(max_workers: int) -> List[int]:
    counts = []
    w = 2
    while w < max_workers:
        counts.append(w)
        w *= 2
    if max_workers >= 2:
        counts.append(max_workers)
    return counts


def _strategy_for(node: Plan, default: str) -> str:
    # absorption shards best cell-aligned (comparable tuples land in
    # the same shard, so subsumption is caught locally); joins and
    # projections balance better under the stable hash
    if isinstance(node, Absorb):
        return "cell"
    return default


def plan_physical(
    plan: Plan,
    db: Optional[Database] = None,
    model: Optional[CostModel] = None,
    max_workers: int = 1,
    default_strategy: str = "hash",
) -> Dict[Plan, Decision]:
    """Serial-vs-parallel :class:`Decision` per Join/Project/Absorb node.

    ``max_workers`` is the pool capacity the caller is willing to
    grant (1 disables dispatch entirely — every decision is serial,
    which is how ``--optimize=cost`` without ``--parallel`` runs).
    """
    model = model if model is not None else CostModel()
    estimate = estimate_plan(plan, db, model)
    decisions: Dict[Plan, Decision] = {}

    def walk(est: PlanEstimate) -> None:
        for child in est.children:
            walk(child)
        node = est.node
        if not isinstance(node, PARALLEL_OPS) or node in decisions:
            return
        label = est.label
        in_rows = sum(c.rows for c in est.children) if est.children else 0.0
        serial = est.seconds
        if max_workers < 2:
            decisions[node] = Decision(
                label, False, 1, default_strategy, serial, serial,
                "serial: pool capacity is 1",
            )
            return
        if in_rows < _MIN_PARALLEL_ROWS:
            decisions[node] = Decision(
                label, False, 1, default_strategy, serial, serial,
                f"serial: ~{in_rows:.0f} input row(s) is below the "
                f"shard floor",
            )
            return
        best_workers, best_cost = 1, serial
        for workers in _candidate_workers(max_workers):
            cost = model.parallel_seconds(serial, workers, in_rows)
            if cost < best_cost:
                best_workers, best_cost = workers, cost
        if best_workers > 1 and serial > best_cost * _DISPATCH_MARGIN:
            strategy = _strategy_for(node, default_strategy)
            decisions[node] = Decision(
                label, True, best_workers, strategy, serial, best_cost,
                f"parallel×{best_workers}/{strategy}: modeled "
                f"{serial * 1e3:.2f}ms serial vs {best_cost * 1e3:.2f}ms",
            )
        else:
            decisions[node] = Decision(
                label, False, 1, default_strategy, serial,
                min(best_cost, serial),
                "serial: dispatch overhead exceeds the modeled win",
            )

    walk(estimate)
    return decisions


# ------------------------------------------------------------------ executor


def execute_plan(
    plan: Plan,
    database: Optional[Database] = None,
    theory: ConstraintTheory = DENSE_ORDER,
    context=None,
    decisions: Optional[Dict[Plan, Decision]] = None,
) -> Relation:
    """Run a plan with per-node dispatch and Shared-subtree memoization.

    ``context`` is the (inactive) :class:`ExecutionContext` capability;
    it is activated only around nodes whose :class:`Decision` chose
    parallel, with its worker count and shard strategy pinned to the
    decision for the duration of that one operator.  With ``context``
    or ``decisions`` absent every node runs serially — still through
    this executor, so planned-serial and planned-parallel walk the
    exact same plan.
    """
    db = database if database is not None else Database(theory=theory)
    decisions = decisions or {}
    memo: Dict[Plan, Relation] = {}

    def dispatched(node: Plan, thunk):
        decision = decisions.get(node)
        if decision is None or not decision.parallel or context is None:
            return thunk()
        saved = (context.workers, context.shard_strategy, context.min_tuples)
        context.workers = decision.workers
        context.shard_strategy = decision.strategy
        # the planner already sized this node; keep only a degenerate
        # floor so 0/1-tuple actuals never shard
        context.min_tuples = 2
        try:
            with context:
                return thunk()
        finally:
            (context.workers, context.shard_strategy,
             context.min_tuples) = saved

    def run(node: Plan) -> Relation:
        if isinstance(node, Shared):
            cached = memo.get(node.source)
            if cached is None:
                cached = memo[node.source] = run(node.source)
            return cached
        if isinstance(node, (Scan, ConstraintScan, Universe, Empty)):
            return _execute_serial_node(node, db, theory)
        if isinstance(node, Select):
            return run(node.source).select(list(node.atoms))
        if isinstance(node, Project):
            source = run(node.source)
            return dispatched(node, lambda: source.project(node.columns))
        if isinstance(node, Absorb):
            source = run(node.source)
            return dispatched(node, source.simplify)
        if isinstance(node, Complement):
            return run(node.source).complement()
        if isinstance(node, Join):
            parts = [run(p) for p in node.parts]

            def fold() -> Relation:
                result = parts[0]
                for piece in parts[1:]:
                    result = result.join(piece)
                return result

            result = dispatched(node, fold)
            target = node.schema
            if result.schema != target:
                result = result.extend(
                    _common_schema(result.schema, target)
                ).project(target)
            return result
        if isinstance(node, Union):
            target = node.schema
            result = Relation.empty(target, theory)
            for p in node.parts:
                piece = run(p)
                padded = piece.extend(_common_schema(piece.schema, target))
                if padded.schema != target:
                    padded = padded.project(target)
                result = result.union(padded)
            return result
        raise EvaluationError(
            f"cannot execute plan node {type(node).__name__}"
        )  # pragma: no cover

    return run(plan)


# ------------------------------------------------------------------- facade


#: accepted --optimize modes
OPTIMIZE_MODES = ("none", "heuristic", "cost")


class QueryPlanner:
    """The planning facade behind ``--optimize`` and ``repro plan``.

    ``mode``:

    * ``"none"`` — not constructed (callers fall back to the direct
      evaluator); listed for completeness.
    * ``"heuristic"`` — rule-engine rewrites, always-serial execution.
    * ``"cost"`` — rewrites plus cost-modeled per-operator dispatch
      through ``context`` when one is granted.

    Logical plans are cached per formula (Datalog re-derives the same
    rule bodies every round; ``planner.cache.hits`` counts the wins),
    while physical decisions are recomputed per call from current
    relation sizes.  When a tracer is active, each planning step runs
    under a ``planner.plan`` span, decisions are logged as
    ``planner.decision`` records, and ``planner.*`` metrics count
    plans, rule firings, and dispatch verdicts.
    """

    def __init__(
        self,
        mode: str = "cost",
        model: Optional[CostModel] = None,
        context=None,
        default_strategy: str = "hash",
    ) -> None:
        if mode not in OPTIMIZE_MODES:
            raise ValueError(
                f"mode must be one of {OPTIMIZE_MODES}, got {mode!r}"
            )
        self.mode = mode
        self.model = model if model is not None else CostModel()
        self.context = context
        self.default_strategy = default_strategy
        self._logical_cache: Dict[object, Plan] = {}
        self._scan_names: Dict[Plan, tuple] = {}
        self._physical_cache: Dict[tuple, Dict[Plan, Decision]] = {}

    # ------------------------------------------------------------- planning

    @property
    def max_workers(self) -> int:
        if self.mode != "cost" or self.context is None:
            return 1
        return self.context.workers

    def logical_plan(self, formula, db: Optional[Database]) -> Plan:
        from repro.core.rules import heuristic_engine
        from repro.obs.trace import active_tracer

        cached = self._logical_cache.get(formula)
        tracer = active_tracer()
        if cached is not None:
            if tracer is not None:
                tracer.metrics.count("planner.cache.hits")
            return cached
        engine = heuristic_engine(db)
        plan = engine.run(compile_formula(formula))
        self._logical_cache[formula] = plan
        if tracer is not None:
            tracer.metrics.count("planner.plans")
            for rule, fired in engine.fired.items():
                tracer.metrics.count(f"planner.rule.{rule}", fired)
        return plan

    def _db_signature(self, plan: Plan, db: Optional[Database]) -> tuple:
        """Scanned-relation cardinalities: the only database facts the
        cost estimate reads, so they key the physical-decision memo —
        Datalog fixpoints replan a rule body only on rounds where an
        input relation actually changed size."""
        names = self._scan_names.get(plan)
        if names is None:
            found = set()

            def walk(node: Plan) -> None:
                if isinstance(node, Scan):
                    found.add(node.name)
                for child in node.children():
                    walk(child)

            walk(plan)
            names = tuple(sorted(found))
            self._scan_names[plan] = names
        if db is None:
            return names
        return tuple(
            (name, len(db[name]) if name in db else None) for name in names
        )

    def physical_plan(
        self, plan: Plan, db: Optional[Database]
    ) -> Dict[Plan, Decision]:
        if self.mode != "cost":
            return {}
        from repro.obs.trace import active_tracer

        key = (plan, self.max_workers, self._db_signature(plan, db))
        cached = self._physical_cache.get(key)
        if cached is not None:
            tracer = active_tracer()
            if tracer is not None:
                tracer.metrics.count("planner.physical.cache.hits")
            return cached
        decisions = plan_physical(
            plan, db, self.model,
            max_workers=self.max_workers,
            default_strategy=self.default_strategy,
        )
        self._physical_cache[key] = decisions
        tracer = active_tracer()
        if tracer is not None:
            for decision in decisions.values():
                tracer.metrics.count(
                    "planner.nodes.parallel" if decision.parallel
                    else "planner.nodes.serial"
                )
                tracer.log("planner.decision", **decision.as_attrs())
        return decisions

    # ------------------------------------------------------------ execution

    def run(
        self,
        formula,
        db: Optional[Database] = None,
        theory: ConstraintTheory = DENSE_ORDER,
        guard=None,
    ) -> Relation:
        """Plan and execute one formula (the evaluator replacement)."""
        from repro.obs.trace import span

        with span("planner.plan", mode=self.mode):
            plan = self.logical_plan(formula, db)
            decisions = self.physical_plan(plan, db)
        context = self.context if self.mode == "cost" else None
        if context is not None and any(
            d.parallel for d in decisions.values()
        ):
            # size the pool once at its capacity; per-node decisions
            # only lower the shard count
            context._ensure_executor()
        if guard is None:
            return execute_plan(plan, db, theory, context, decisions)
        with guard:
            return execute_plan(plan, db, theory, context, decisions)


# ------------------------------------------------------------------ rendering


def render_plan(
    plan: Plan,
    db: Optional[Database] = None,
    model: Optional[CostModel] = None,
    max_workers: int = 1,
    default_strategy: str = "hash",
) -> str:
    """The ``repro plan`` listing: tree, est rows/cost, dispatch verdict."""
    model = model if model is not None else CostModel()
    estimate = estimate_plan(plan, db, model)
    decisions = plan_physical(
        plan, db, model, max_workers=max_workers,
        default_strategy=default_strategy,
    )
    lines: List[str] = [
        f"plan (cost model: {model.source}, "
        f"pool capacity: {max_workers} worker(s))",
    ]

    def walk(est: PlanEstimate, depth: int) -> None:
        verdict = ""
        decision = decisions.get(est.node)
        if decision is not None:
            verdict = (
                f"  [{'parallel×' + str(decision.workers) + '/' + decision.strategy if decision.parallel else 'serial'}]"
                f"  ({decision.reason})"
            )
        elif est.cached:
            verdict = "  [memoized]"
        label = "  " * depth + est.label
        lines.append(
            f"  {label:<32} est_rows={est.rows:>10.0f} "
            f"est_cost={est.seconds * 1e3:>9.3f}ms{verdict}"
        )
        for child in est.children:
            walk(child, depth + 1)

    walk(estimate, 0)
    total = estimate.total_seconds
    parallel_nodes = sum(1 for d in decisions.values() if d.parallel)
    lines.append(
        f"  total modeled cost {total * 1e3:.3f}ms; "
        f"{parallel_nodes} node(s) chosen parallel, "
        f"{len(decisions) - parallel_nodes} serial"
    )
    return "\n".join(lines)
