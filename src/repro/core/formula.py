"""First-order formulas over constraint databases (paper Sections 2-3).

The query language FO is first-order logic over ``{=, <=} union Q``
extended with database relation symbols.  A :class:`Formula` is an
immutable AST with:

* :class:`Constraint` -- a theory atom (dense-order by default);
* :class:`RelationAtom` -- ``R(t1, ..., tk)`` for a database relation;
* boolean connectives :class:`And`, :class:`Or`, :class:`Not`;
* quantifiers :class:`Exists`, :class:`ForAll`;
* constants :data:`TRUE` and :data:`FALSE`.

Sugar: ``f & g``, ``f | g``, ``~f``, and the :func:`exists` /
:func:`forall` helpers.  Substitution is capture-avoiding.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import FrozenSet, Iterable, Mapping, Sequence, Tuple, Union

from repro.core.atoms import Atom
from repro.core.terms import Const, Term, TermLike, Var, as_term
from repro.errors import EvaluationError

__all__ = [
    "Formula",
    "TRUE",
    "FALSE",
    "Constraint",
    "RelationAtom",
    "And",
    "Or",
    "Not",
    "Exists",
    "ForAll",
    "exists",
    "forall",
    "rel",
    "constraint",
    "conj",
    "disj",
]


class Formula:
    """Abstract base of all formula nodes (immutable)."""

    __slots__ = ()

    # -- structure ---------------------------------------------------------

    def free_variables(self) -> FrozenSet[Var]:
        raise NotImplementedError

    def constants(self) -> FrozenSet[Fraction]:
        raise NotImplementedError

    def relation_names(self) -> FrozenSet[str]:
        raise NotImplementedError

    def substitute(self, mapping: Mapping[Var, Term]) -> "Formula":
        """Capture-avoiding substitution of terms for free variables."""
        raise NotImplementedError

    def quantifier_rank(self) -> int:
        """Maximum nesting depth of quantifiers."""
        raise NotImplementedError

    # -- sugar --------------------------------------------------------------

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)

    def implies(self, other: "Formula") -> "Formula":
        return Or((Not(self), other))

    def iff(self, other: "Formula") -> "Formula":
        return And((self.implies(other), other.implies(self)))


@dataclass(frozen=True)
class _Boolean(Formula):
    value: bool

    def free_variables(self) -> FrozenSet[Var]:
        return frozenset()

    def constants(self) -> FrozenSet[Fraction]:
        return frozenset()

    def relation_names(self) -> FrozenSet[str]:
        return frozenset()

    def substitute(self, mapping: Mapping[Var, Term]) -> Formula:
        return self

    def quantifier_rank(self) -> int:
        return 0

    def __str__(self) -> str:
        return "true" if self.value else "false"


TRUE = _Boolean(True)
FALSE = _Boolean(False)


@dataclass(frozen=True)
class Constraint(Formula):
    """A single constraint atom (any surface operator, including NE)."""

    atom: Atom

    def free_variables(self) -> FrozenSet[Var]:
        return self.atom.variables

    def constants(self) -> FrozenSet[Fraction]:
        return self.atom.constants

    def relation_names(self) -> FrozenSet[str]:
        return frozenset()

    def substitute(self, mapping: Mapping[Var, Term]) -> Formula:
        folded = self.atom.substitute(mapping)
        if isinstance(folded, bool):
            return TRUE if folded else FALSE
        return Constraint(folded)

    def quantifier_rank(self) -> int:
        return 0

    def __str__(self) -> str:
        return str(self.atom)


@dataclass(frozen=True)
class RelationAtom(Formula):
    """``R(t1, ..., tk)`` -- membership in a database relation."""

    name: str
    args: Tuple[Term, ...]

    def free_variables(self) -> FrozenSet[Var]:
        return frozenset(t for t in self.args if isinstance(t, Var))

    def constants(self) -> FrozenSet[Fraction]:
        return frozenset(t.value for t in self.args if isinstance(t, Const))

    def relation_names(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def substitute(self, mapping: Mapping[Var, Term]) -> Formula:
        new_args = tuple(
            mapping.get(t, t) if isinstance(t, Var) else t for t in self.args
        )
        return RelationAtom(self.name, new_args)

    def quantifier_rank(self) -> int:
        return 0

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class And(Formula):
    subs: Tuple[Formula, ...]

    def free_variables(self) -> FrozenSet[Var]:
        return frozenset().union(*(s.free_variables() for s in self.subs)) if self.subs else frozenset()

    def constants(self) -> FrozenSet[Fraction]:
        return frozenset().union(*(s.constants() for s in self.subs)) if self.subs else frozenset()

    def relation_names(self) -> FrozenSet[str]:
        return frozenset().union(*(s.relation_names() for s in self.subs)) if self.subs else frozenset()

    def substitute(self, mapping: Mapping[Var, Term]) -> Formula:
        return And(tuple(s.substitute(mapping) for s in self.subs))

    def quantifier_rank(self) -> int:
        return max((s.quantifier_rank() for s in self.subs), default=0)

    def __str__(self) -> str:
        return "(" + " and ".join(map(str, self.subs)) + ")"


@dataclass(frozen=True)
class Or(Formula):
    subs: Tuple[Formula, ...]

    def free_variables(self) -> FrozenSet[Var]:
        return frozenset().union(*(s.free_variables() for s in self.subs)) if self.subs else frozenset()

    def constants(self) -> FrozenSet[Fraction]:
        return frozenset().union(*(s.constants() for s in self.subs)) if self.subs else frozenset()

    def relation_names(self) -> FrozenSet[str]:
        return frozenset().union(*(s.relation_names() for s in self.subs)) if self.subs else frozenset()

    def substitute(self, mapping: Mapping[Var, Term]) -> Formula:
        return Or(tuple(s.substitute(mapping) for s in self.subs))

    def quantifier_rank(self) -> int:
        return max((s.quantifier_rank() for s in self.subs), default=0)

    def __str__(self) -> str:
        return "(" + " or ".join(map(str, self.subs)) + ")"


@dataclass(frozen=True)
class Not(Formula):
    sub: Formula

    def free_variables(self) -> FrozenSet[Var]:
        return self.sub.free_variables()

    def constants(self) -> FrozenSet[Fraction]:
        return self.sub.constants()

    def relation_names(self) -> FrozenSet[str]:
        return self.sub.relation_names()

    def substitute(self, mapping: Mapping[Var, Term]) -> Formula:
        return Not(self.sub.substitute(mapping))

    def quantifier_rank(self) -> int:
        return self.sub.quantifier_rank()

    def __str__(self) -> str:
        return f"not {self.sub}"


def _fresh_name(base: str, taken: Iterable[str]) -> str:
    taken = set(taken)
    for i in itertools.count():
        candidate = f"{base}_{i}"
        if candidate not in taken:
            return candidate
    raise EvaluationError("unreachable")  # pragma: no cover


class _Quantifier(Formula):
    __slots__ = ("variables", "sub")

    kind = "?"

    def __init__(self, variables: Union[str, Var, Sequence], sub: Formula) -> None:
        if isinstance(variables, (str, Var)):
            variables = (variables,)
        vs = tuple(Var(v) if isinstance(v, str) else v for v in variables)
        if not vs:
            raise EvaluationError("quantifier with no variables")
        self.variables: Tuple[Var, ...] = vs
        self.sub = sub

    def free_variables(self) -> FrozenSet[Var]:
        return self.sub.free_variables() - frozenset(self.variables)

    def constants(self) -> FrozenSet[Fraction]:
        return self.sub.constants()

    def relation_names(self) -> FrozenSet[str]:
        return self.sub.relation_names()

    def quantifier_rank(self) -> int:
        return len(self.variables) + self.sub.quantifier_rank()

    def substitute(self, mapping: Mapping[Var, Term]) -> Formula:
        # drop bindings for the bound variables
        live = {v: t for v, t in mapping.items() if v not in self.variables}
        if not live:
            return type(self)(self.variables, self.sub)
        # avoid capture: rename bound variables clashing with substituted terms
        incoming: set = set()
        for t in live.values():
            if isinstance(t, Var):
                incoming.add(t.name)
        bound = list(self.variables)
        body = self.sub
        taken = {v.name for v in body.free_variables()} | incoming | {v.name for v in bound}
        for i, v in enumerate(bound):
            if v.name in incoming:
                fresh = Var(_fresh_name(v.name, taken))
                taken.add(fresh.name)
                body = body.substitute({v: fresh})
                bound[i] = fresh
        return type(self)(tuple(bound), body.substitute(live))

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is type(self)
            and self.variables == other.variables
            and self.sub == other.sub
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.variables, self.sub))

    def __str__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"({self.kind} {names}. {self.sub})"


class Exists(_Quantifier):
    """``exists x1, ..., xn . sub``"""

    __slots__ = ()
    kind = "exists"


class ForAll(_Quantifier):
    """``forall x1, ..., xn . sub``"""

    __slots__ = ()
    kind = "forall"


# ----------------------------------------------------------------- helpers


def exists(variables, sub: Formula) -> Formula:
    """``exists variables . sub`` (accepts names, Vars, or sequences)."""
    return Exists(variables, sub)


def forall(variables, sub: Formula) -> Formula:
    """``forall variables . sub``"""
    return ForAll(variables, sub)


def rel(name: str, *args: TermLike) -> RelationAtom:
    """Database relation atom ``name(args...)``."""
    return RelationAtom(name, tuple(as_term(a) for a in args))


def constraint(a: Union[Atom, bool]) -> Formula:
    """Wrap an atom (or folded boolean) as a formula."""
    if isinstance(a, bool):
        return TRUE if a else FALSE
    return Constraint(a)


def conj(*formulas: Formula) -> Formula:
    """N-ary conjunction (empty = true)."""
    if not formulas:
        return TRUE
    if len(formulas) == 1:
        return formulas[0]
    return And(tuple(formulas))


def disj(*formulas: Formula) -> Formula:
    """N-ary disjunction (empty = false)."""
    if not formulas:
        return FALSE
    if len(formulas) == 1:
        return formulas[0]
    return Or(tuple(formulas))
