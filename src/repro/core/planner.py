"""Query plans: explicit relational algebra with an optimizer.

The closed-form evaluator (:mod:`repro.core.evaluator`) walks the
formula tree directly.  For a database *system*, query processing wants
an explicit plan stage: compile the formula to an algebra tree, apply
rewrite passes, then execute.  This module provides exactly that:

* :class:`Plan` nodes: ``Scan``, ``ConstraintScan``, ``Select``,
  ``Project``, ``Join``, ``Union``, ``Complement``, ``Absorb``,
  ``Shared``, ``Universe``, ``Empty``;
* :func:`compile_formula` -- formula to a naive plan mirroring the
  evaluator's recursion (Datalog¬ rule bodies compile through the same
  IR: :mod:`repro.datalog.engine` builds the body formula and hands it
  here when a planner is attached);
* :func:`optimize` -- the heuristic rewrite entry point, now a thin
  wrapper over the HepPlanner-style rule engine in
  :mod:`repro.core.rules` (named :class:`~repro.core.rules.RewriteRule`
  objects applied to fixpoint under a firing budget);
* :func:`execute` -- run a plan against a database;
* :func:`explain` -- a readable indented plan dump.

Cost-based planning lives one layer up: :mod:`repro.core.costmodel`
annotates a plan with calibrated per-node cardinality/cost estimates
and :mod:`repro.core.physical` decides serial-vs-parallel dispatch per
operator.

``execute(optimize(compile_formula(f)), db)`` is equivalence-tested
against ``evaluate(f, db)`` on random formulas; the E12/E20 ablation
benchmarks measure the optimizer's effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.database import Database
from repro.core.evaluator import _common_schema, _result_schema
from repro.core.formula import (
    And,
    Constraint,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    RelationAtom,
    _Boolean,
)
from repro.core.relation import Relation
from repro.core.terms import Var
from repro.core.theory import ConstraintTheory, DENSE_ORDER
from repro.errors import EvaluationError, SchemaError

__all__ = [
    "Plan",
    "Scan",
    "ConstraintScan",
    "Universe",
    "Empty",
    "Select",
    "Project",
    "Join",
    "Union",
    "Complement",
    "Absorb",
    "Shared",
    "compile_formula",
    "optimize",
    "execute",
    "explain",
]


# ------------------------------------------------------------------ plan tree


@dataclass(frozen=True)
class Plan:
    """Base plan node; ``schema`` is the (sorted) output columns."""

    @property
    def schema(self) -> Tuple[str, ...]:
        raise NotImplementedError

    def children(self) -> Tuple["Plan", ...]:
        return ()


@dataclass(frozen=True)
class Scan(Plan):
    """Read a stored relation, specialized to argument terms."""

    name: str
    args: Tuple  # terms, parallel to the stored schema

    @property
    def schema(self) -> Tuple[str, ...]:
        return tuple(sorted({t.name for t in self.args if isinstance(t, Var)}))


@dataclass(frozen=True)
class ConstraintScan(Plan):
    """The solution set of one constraint atom."""

    atom: object

    @property
    def schema(self) -> Tuple[str, ...]:
        return tuple(sorted(v.name for v in self.atom.variables))


@dataclass(frozen=True)
class Universe(Plan):
    columns: Tuple[str, ...]

    @property
    def schema(self) -> Tuple[str, ...]:
        return self.columns


@dataclass(frozen=True)
class Empty(Plan):
    columns: Tuple[str, ...]

    @property
    def schema(self) -> Tuple[str, ...]:
        return self.columns


@dataclass(frozen=True)
class Select(Plan):
    source: Plan
    atoms: Tuple  # constraint atoms over source columns

    @property
    def schema(self) -> Tuple[str, ...]:
        return self.source.schema

    def children(self) -> Tuple[Plan, ...]:
        return (self.source,)


@dataclass(frozen=True)
class Project(Plan):
    source: Plan
    columns: Tuple[str, ...]

    @property
    def schema(self) -> Tuple[str, ...]:
        return self.columns

    def children(self) -> Tuple[Plan, ...]:
        return (self.source,)


@dataclass(frozen=True)
class Join(Plan):
    parts: Tuple[Plan, ...]

    @property
    def schema(self) -> Tuple[str, ...]:
        return _common_schema(*(p.schema for p in self.parts))

    def children(self) -> Tuple[Plan, ...]:
        return self.parts


@dataclass(frozen=True)
class Union(Plan):
    parts: Tuple[Plan, ...]

    @property
    def schema(self) -> Tuple[str, ...]:
        return _common_schema(*(p.schema for p in self.parts))

    def children(self) -> Tuple[Plan, ...]:
        return self.parts


@dataclass(frozen=True)
class Complement(Plan):
    source: Plan

    @property
    def schema(self) -> Tuple[str, ...]:
        return self.source.schema

    def children(self) -> Tuple[Plan, ...]:
        return (self.source,)


@dataclass(frozen=True)
class Absorb(Plan):
    """Containment absorption (``Relation.simplify``) as a plan node.

    Semantics-free on the pointset (absorption only drops subsumed
    tuples); placed by the rule engine where a smaller representation
    pays downstream — above unions that accumulate redundant tuples
    and below complements, whose cost is exponential in the input
    tuple count.
    """

    source: Plan

    @property
    def schema(self) -> Tuple[str, ...]:
        return self.source.schema

    def children(self) -> Tuple[Plan, ...]:
        return (self.source,)


@dataclass(frozen=True)
class Shared(Plan):
    """A marker for a subplan occurring more than once in the tree.

    Plan nodes are value objects, so equal duplicated subtrees compare
    equal; the common-subplan-dedup rule wraps every occurrence in
    ``Shared`` and executors memoize on the wrapped source, evaluating
    it once per query.  Plain :func:`execute` just unwraps.
    """

    source: Plan

    @property
    def schema(self) -> Tuple[str, ...]:
        return self.source.schema

    def children(self) -> Tuple[Plan, ...]:
        return (self.source,)


# ------------------------------------------------------------------ compile


def compile_formula(formula: Formula) -> Plan:
    """The naive plan mirroring the evaluator's recursion."""
    if isinstance(formula, _Boolean):
        return Universe(()) if formula.value else Empty(())
    if isinstance(formula, Constraint):
        disjuncts = formula.atom.expand_ne()
        scans = tuple(ConstraintScan(d) for d in disjuncts)
        return scans[0] if len(scans) == 1 else Union(scans)
    if isinstance(formula, RelationAtom):
        return Scan(formula.name, formula.args)
    if isinstance(formula, And):
        return Join(tuple(compile_formula(s) for s in formula.subs))
    if isinstance(formula, Or):
        return Union(tuple(compile_formula(s) for s in formula.subs))
    if isinstance(formula, Not):
        return Complement(compile_formula(formula.sub))
    if isinstance(formula, Exists):
        inner = compile_formula(formula.sub)
        victims = {v.name for v in formula.variables}
        return Project(inner, tuple(c for c in inner.schema if c not in victims))
    if isinstance(formula, ForAll):
        return compile_formula(Not(Exists(formula.variables, Not(formula.sub))))
    raise EvaluationError(f"cannot compile node {type(formula).__name__}")


# ------------------------------------------------------------------ optimize


def _flatten_joins(plan: Plan) -> Plan:
    plan = _rewrite_children(plan, _flatten_joins)
    if isinstance(plan, Join):
        parts: List[Plan] = []
        for p in plan.parts:
            if isinstance(p, Join):
                parts.extend(p.parts)
            else:
                parts.append(p)
        return Join(tuple(parts))
    return plan


def _push_selections(plan: Plan) -> Plan:
    """Merge Select(Join(...)) into the join part that covers the atom."""
    plan = _rewrite_children(plan, _push_selections)
    if isinstance(plan, Select) and isinstance(plan.source, Join):
        remaining: List = []
        parts = list(plan.source.parts)
        for atom in plan.atoms:
            needed = {v.name for v in atom.variables}
            placed = False
            for i, part in enumerate(parts):
                if needed <= set(part.schema):
                    parts[i] = Select(part, (atom,))
                    placed = True
                    break
            if not placed:
                remaining.append(atom)
        pushed = Join(tuple(parts))
        return Select(pushed, tuple(remaining)) if remaining else pushed
    if isinstance(plan, Select) and isinstance(plan.source, Union):
        needed = set()
        for atom in plan.atoms:
            needed |= {v.name for v in atom.variables}
        if all(needed <= set(p.schema) for p in plan.source.parts):
            return Union(tuple(Select(p, plan.atoms) for p in plan.source.parts))
        return plan
    if isinstance(plan, Select) and isinstance(plan.source, Select):
        return Select(plan.source.source, plan.source.atoms + plan.atoms)
    return plan


def _estimate(plan: Plan, db: Optional[Database]) -> int:
    """Crude representation-size estimate (tuple counts)."""
    if isinstance(plan, Scan):
        if db is not None and plan.name in db:
            return max(1, len(db[plan.name]))
        return 8
    if isinstance(plan, (ConstraintScan, Universe, Empty)):
        return 1
    if isinstance(plan, Select):
        return _estimate(plan.source, db)
    if isinstance(plan, Project):
        return _estimate(plan.source, db)
    if isinstance(plan, Join):
        product = 1
        for p in plan.parts:
            product *= _estimate(p, db)
        return product
    if isinstance(plan, Union):
        return sum(_estimate(p, db) for p in plan.parts)
    if isinstance(plan, Complement):
        return 2 ** min(_estimate(plan.source, db), 16)
    if isinstance(plan, (Absorb, Shared)):
        return _estimate(plan.source, db)
    return 4  # pragma: no cover


def _reorder_joins(plan: Plan, db: Optional[Database]) -> Plan:
    plan = _rewrite_children(plan, lambda p: _reorder_joins(p, db))
    if isinstance(plan, Join) and len(plan.parts) > 2:
        ordered = tuple(sorted(plan.parts, key=lambda p: _estimate(p, db)))
        return Join(ordered)
    return plan


def _rewrite_children(plan: Plan, rewrite) -> Plan:
    if isinstance(plan, Select):
        return Select(rewrite(plan.source), plan.atoms)
    if isinstance(plan, Project):
        return Project(rewrite(plan.source), plan.columns)
    if isinstance(plan, Join):
        return Join(tuple(rewrite(p) for p in plan.parts))
    if isinstance(plan, Union):
        return Union(tuple(rewrite(p) for p in plan.parts))
    if isinstance(plan, Complement):
        return Complement(rewrite(plan.source))
    if isinstance(plan, Absorb):
        return Absorb(rewrite(plan.source))
    if isinstance(plan, Shared):
        return Shared(rewrite(plan.source))
    return plan


def _constraint_joins_to_selects(plan: Plan) -> Plan:
    """Turn ConstraintScan join parts into selections on a sibling.

    ``Join(R, sigma)`` with a constraint whose variables are covered by
    ``R`` becomes ``Select(R, sigma)`` -- avoiding a join operator call.
    """
    plan = _rewrite_children(plan, _constraint_joins_to_selects)
    if not isinstance(plan, Join):
        return plan
    relational = [p for p in plan.parts if not isinstance(p, ConstraintScan)]
    constraints = [p for p in plan.parts if isinstance(p, ConstraintScan)]
    if not relational or not constraints:
        return plan
    leftover: List[Plan] = []
    for scan in constraints:
        needed = set(scan.schema)
        placed = False
        for i, part in enumerate(relational):
            if needed <= set(part.schema):
                relational[i] = Select(part, (scan.atom,))
                placed = True
                break
        if not placed:
            leftover.append(scan)
    parts = relational + leftover
    if len(parts) == 1:
        return parts[0]
    return Join(tuple(parts))


def optimize(plan: Plan, database: Optional[Database] = None) -> Plan:
    """Apply the heuristic rewrite rules (semantics-preserving).

    Thin wrapper over the rule engine in :mod:`repro.core.rules`; the
    historical pass functions above remain for targeted use and tests.
    """
    from repro.core.rules import heuristic_engine

    return heuristic_engine(database).run(plan)


# ------------------------------------------------------------------ execute


def execute(
    plan: Plan,
    database: Optional[Database] = None,
    theory: ConstraintTheory = DENSE_ORDER,
) -> Relation:
    """Run a plan; the result schema is the plan's schema."""
    db = database if database is not None else Database(theory=theory)

    if isinstance(plan, Universe):
        return Relation.universe(plan.columns, theory)
    if isinstance(plan, Empty):
        return Relation.empty(plan.columns, theory)
    if isinstance(plan, ConstraintScan):
        return Relation.from_atoms(plan.schema, [[plan.atom]], theory)
    if isinstance(plan, Scan):
        from repro.core.evaluator import _eval_relation_atom

        return _eval_relation_atom(RelationAtom(plan.name, plan.args), db, theory)
    if isinstance(plan, Select):
        source = execute(plan.source, db, theory)
        return source.select(list(plan.atoms))
    if isinstance(plan, Project):
        source = execute(plan.source, db, theory)
        return source.project(plan.columns)
    if isinstance(plan, Join):
        parts = [execute(p, db, theory) for p in plan.parts]
        result = parts[0]
        for p in parts[1:]:
            result = result.join(p)
        target = plan.schema
        if result.schema != target:
            result = result.extend(_common_schema(result.schema, target)).project(target)
        return result
    if isinstance(plan, Union):
        target = plan.schema
        result = Relation.empty(target, theory)
        for p in plan.parts:
            piece = execute(p, db, theory)
            padded = piece.extend(_common_schema(piece.schema, target))
            if padded.schema != target:
                padded = padded.project(target)
            result = result.union(padded)
        return result
    if isinstance(plan, Complement):
        return execute(plan.source, db, theory).complement()
    if isinstance(plan, Absorb):
        return execute(plan.source, db, theory).simplify()
    if isinstance(plan, Shared):
        return execute(plan.source, db, theory)
    raise EvaluationError(f"cannot execute plan node {type(plan).__name__}")


def explain(plan: Plan, indent: int = 0) -> str:
    """A readable indented dump of the plan tree."""
    pad = "  " * indent
    if isinstance(plan, Scan):
        args = ", ".join(str(a) for a in plan.args)
        return f"{pad}Scan {plan.name}({args})"
    if isinstance(plan, ConstraintScan):
        return f"{pad}Constraint [{plan.atom}]"
    if isinstance(plan, Universe):
        return f"{pad}Universe {plan.columns}"
    if isinstance(plan, Empty):
        return f"{pad}Empty {plan.columns}"
    if isinstance(plan, Select):
        atoms = " and ".join(str(a) for a in plan.atoms)
        return f"{pad}Select [{atoms}]\n" + explain(plan.source, indent + 1)
    if isinstance(plan, Project):
        return f"{pad}Project {plan.columns}\n" + explain(plan.source, indent + 1)
    if isinstance(plan, (Join, Union)):
        label = "Join" if isinstance(plan, Join) else "Union"
        lines = [f"{pad}{label}"]
        lines += [explain(p, indent + 1) for p in plan.parts]
        return "\n".join(lines)
    if isinstance(plan, Complement):
        return f"{pad}Complement\n" + explain(plan.source, indent + 1)
    if isinstance(plan, Absorb):
        return f"{pad}Absorb\n" + explain(plan.source, indent + 1)
    if isinstance(plan, Shared):
        return f"{pad}Shared\n" + explain(plan.source, indent + 1)
    return f"{pad}?{type(plan).__name__}"  # pragma: no cover
