"""Quantifier elimination for dense-order formulas.

The theory of dense linear order without endpoints admits quantifier
elimination ([CK73]; paper Section 2) -- and by [GS94] this is exactly
what makes FO a query language on finitely representable databases.
This module exposes QE at the formula level, on top of the closed-form
evaluator: a (pure constraint) formula is evaluated to a generalized
relation, which *is* a quantifier-free DNF, and converted back to a
formula.

Also provided: satisfiability, validity, and semantic equivalence of
constraint formulas -- the decision procedures used throughout the test
suite and the genericity experiments.
"""

from __future__ import annotations

from typing import Optional

from repro.core.database import Database
from repro.core.evaluator import evaluate
from repro.core.formula import Constraint, Formula, FALSE, TRUE, conj, disj
from repro.core.relation import Relation
from repro.core.theory import ConstraintTheory, DENSE_ORDER
from repro.errors import EvaluationError
from repro.obs.trace import active_tracer

__all__ = [
    "eliminate_quantifiers",
    "relation_to_formula",
    "formula_to_relation",
    "is_satisfiable",
    "is_valid",
    "equivalent",
]


def formula_to_relation(
    formula: Formula, theory: ConstraintTheory = DENSE_ORDER
) -> Relation:
    """Solutions of a pure constraint formula, as a generalized relation."""
    if formula.relation_names():
        raise EvaluationError(
            "formula mentions database relations; use repro.core.evaluator.evaluate"
        )
    tracer = active_tracer()
    if tracer is None:
        return evaluate(formula, Database(theory=theory), theory)
    free = len(formula.free_variables())
    with tracer.span("qe.eliminate", free_vars=free):
        tracer.metrics.count("qe.calls")
        return evaluate(formula, Database(theory=theory), theory)


def relation_to_formula(relation: Relation) -> Formula:
    """The quantifier-free DNF formula denoting ``relation``."""
    disjuncts = []
    for t in relation.tuples:
        disjuncts.append(conj(*(Constraint(a) for a in sorted(t.atoms, key=str))))
    if not disjuncts:
        return FALSE
    return disj(*disjuncts)


def eliminate_quantifiers(
    formula: Formula, theory: ConstraintTheory = DENSE_ORDER
) -> Formula:
    """An equivalent quantifier-free formula (pure constraint input).

    The free variables are preserved; a sentence collapses to ``TRUE``
    or ``FALSE``.
    """
    relation = formula_to_relation(formula, theory)
    if not relation.schema:
        return FALSE if relation.is_empty() else TRUE
    return relation_to_formula(relation)


def is_satisfiable(formula: Formula, theory: ConstraintTheory = DENSE_ORDER) -> bool:
    """Does the constraint formula have a rational solution?"""
    return not formula_to_relation(formula, theory).is_empty()


def is_valid(formula: Formula, theory: ConstraintTheory = DENSE_ORDER) -> bool:
    """Does every rational assignment satisfy the constraint formula?"""
    from repro.core.formula import Not

    return not is_satisfiable(Not(formula), theory)


def equivalent(
    left: Formula, right: Formula, theory: ConstraintTheory = DENSE_ORDER
) -> bool:
    """Semantic equivalence of two pure constraint formulas."""
    return is_valid(left.iff(right), theory)
