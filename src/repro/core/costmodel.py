"""Ledger-calibrated cost model for plan nodes.

The cost ledger (:mod:`repro.obs.ledger`) records, for every traced
operator call, the input/output cardinalities, the pre-execution
estimate and which estimator produced it, wall seconds, and the
dispatch shape.  This module turns that record stream into numbers a
planner can compare:

* :class:`CostModel` -- per-operator wall-cost coefficients
  (``seconds ~ base + per_input·in + per_unit·unit + per_output·out``
  where ``unit`` is the operator's dominant work term: candidate pairs
  for join, input size for project, in·out for complement, in² for
  absorption), per-estimator-kind correction ratios (observed
  actual/estimated output cardinality), and dispatch-overhead
  coefficients for the parallel backend;
* :func:`fit_cost_model` -- least-squares calibration from recorded
  ``repro.profile/1`` documents (pure-python normal equations; no
  numpy dependency), exposed on the CLI as ``repro calibrate`` /
  ``repro profile --fit``;
* a schema-versioned ``repro.cost-model/1`` JSON document round-trip
  (:meth:`CostModel.save` / :func:`load_cost_model` /
  :func:`validate_cost_model`) so a fitted model persists and is
  loaded at plan time;
* :func:`estimate_plan` -- annotate a logical plan with per-node
  estimated rows and seconds, the input to the serial-vs-parallel
  decisions in :mod:`repro.core.physical`.

The **default** (uncalibrated) model is deliberately conservative
about parallelism: dispatch overhead is priced at observed
process-pool magnitudes, so on small inputs the planner picks serial
-- which is exactly the 1-core regression BENCH_PARALLEL documented.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import EncodingError

__all__ = [
    "COST_MODEL_SCHEMA",
    "CostModel",
    "PlanEstimate",
    "fit_cost_model",
    "load_cost_model",
    "validate_cost_model",
    "estimate_plan",
]

#: schema identifier stamped on every exported cost-model document
COST_MODEL_SCHEMA = "repro.cost-model/1"

#: coefficient keys per operator, in document order
_COEF_KEYS = ("base", "per_input", "per_unit", "per_output")

#: dispatch-overhead keys (parallel cost = serial/(shards·efficiency)
#: + base + per_shard·shards + per_tuple·in_tuples)
_DISPATCH_KEYS = ("base", "per_shard", "per_tuple", "efficiency")

#: operators the model prices (superset of the ledger's OPERATORS:
#: select/union/scan never dispatch but still need serial prices)
_PRICED_OPS = ("join", "project", "complement", "absorb", "select", "union", "scan")

# Conservative defaults, measured order-of-magnitude for the
# pure-python kernels: tens of microseconds per tuple touched, and
# milliseconds per process-pool dispatch.  A fitted model replaces
# them wholesale.
DEFAULT_COEFFICIENTS: Dict[str, Dict[str, float]] = {
    "join": {"base": 2e-5, "per_input": 5e-6, "per_unit": 6e-5, "per_output": 2e-5},
    "project": {"base": 1e-5, "per_input": 8e-5, "per_unit": 0.0, "per_output": 1e-5},
    "complement": {"base": 2e-5, "per_input": 6e-5, "per_unit": 1e-5, "per_output": 3e-5},
    "absorb": {"base": 1e-5, "per_input": 1e-5, "per_unit": 4e-6, "per_output": 0.0},
    "select": {"base": 1e-5, "per_input": 3e-5, "per_unit": 0.0, "per_output": 0.0},
    "union": {"base": 5e-6, "per_input": 3e-6, "per_unit": 0.0, "per_output": 0.0},
    "scan": {"base": 5e-6, "per_input": 2e-6, "per_unit": 0.0, "per_output": 0.0},
}

DEFAULT_DISPATCH: Dict[str, float] = {
    "base": 4e-3, "per_shard": 1.5e-3, "per_tuple": 3e-5, "efficiency": 0.85,
}

#: known estimator kinds (free-form strings are accepted; these are
#: the ones the relation kernels emit today)
ESTIMATOR_KINDS = (
    "join.indexed", "join.cross", "project.input",
    "complement.linear", "complement.product", "absorb.dedup",
)


def _unit_of(op: str, in_tuples: float, out_tuples: float) -> float:
    """The operator's dominant work term (see module docstring)."""
    if op == "join":
        return out_tuples  # candidate pairs ~ the recorded estimate basis
    if op == "project":
        return in_tuples
    if op == "complement":
        return in_tuples * out_tuples
    if op == "absorb":
        return in_tuples * in_tuples
    return 0.0


class CostModel:
    """Calibrated (or default) operator cost coefficients.

    Immutable in practice; construct via :func:`fit_cost_model`,
    :func:`load_cost_model`, or the no-argument default.
    """

    __slots__ = ("coefficients", "dispatch", "ratios", "source", "records_used")

    def __init__(
        self,
        coefficients: Optional[Dict[str, Dict[str, float]]] = None,
        dispatch: Optional[Dict[str, float]] = None,
        ratios: Optional[Dict[str, float]] = None,
        source: str = "default",
        records_used: int = 0,
    ) -> None:
        self.coefficients = {
            op: dict(DEFAULT_COEFFICIENTS[op]) for op in _PRICED_OPS
        }
        for op, coefs in (coefficients or {}).items():
            if op in self.coefficients:
                self.coefficients[op].update(coefs)
        self.dispatch = dict(DEFAULT_DISPATCH)
        self.dispatch.update(dispatch or {})
        self.ratios = dict(ratios or {})
        self.source = source
        self.records_used = records_used

    # ------------------------------------------------------------- pricing

    def op_seconds(
        self, op: str, in_tuples: float, out_tuples: float,
        unit: Optional[float] = None,
    ) -> float:
        """Modeled serial wall seconds for one operator call."""
        coefs = self.coefficients.get(op, DEFAULT_COEFFICIENTS["scan"])
        work = _unit_of(op, in_tuples, out_tuples) if unit is None else unit
        return (
            coefs["base"]
            + coefs["per_input"] * in_tuples
            + coefs["per_unit"] * work
            + coefs["per_output"] * out_tuples
        )

    def ratio(self, estimator: str) -> float:
        """Observed actual/estimated correction for an estimator kind."""
        return self.ratios.get(estimator, 1.0)

    def corrected(self, estimator: str, est_rows: float) -> float:
        """An estimate scaled by the estimator's observed bias."""
        return max(0.0, est_rows * self.ratio(estimator))

    def parallel_seconds(
        self, serial_seconds: float, shards: int, in_tuples: float
    ) -> float:
        """Modeled wall seconds for the same call sharded ``shards`` ways."""
        if shards <= 1:
            return serial_seconds + self.dispatch["base"]
        efficiency = max(0.05, self.dispatch["efficiency"])
        return (
            serial_seconds / (shards * efficiency)
            + self.dispatch["base"]
            + self.dispatch["per_shard"] * shards
            + self.dispatch["per_tuple"] * in_tuples
        )

    # ----------------------------------------------------------- documents

    def as_document(self) -> dict:
        return {
            "schema": COST_MODEL_SCHEMA,
            "source": self.source,
            "records_used": self.records_used,
            "coefficients": {
                op: {key: self.coefficients[op][key] for key in _COEF_KEYS}
                for op in _PRICED_OPS
            },
            "dispatch": {key: self.dispatch[key] for key in _DISPATCH_KEYS},
            "ratios": dict(self.ratios),
        }

    def save(self, path: str) -> dict:
        document = validate_cost_model(self.as_document())
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return document

    @classmethod
    def from_document(cls, document: Any) -> "CostModel":
        document = validate_cost_model(document)
        return cls(
            coefficients=document["coefficients"],
            dispatch=document["dispatch"],
            ratios=document["ratios"],
            source=document["source"],
            records_used=document["records_used"],
        )

    def __repr__(self) -> str:
        return (
            f"<CostModel source={self.source!r} "
            f"records_used={self.records_used}>"
        )


def load_cost_model(path: str) -> CostModel:
    """Read and validate a ``repro.cost-model/1`` document from disk."""
    with open(path, encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as error:
            raise EncodingError(
                f"cost-model file {path!r} is not JSON: {error}"
            ) from None
    return CostModel.from_document(document)


def _fail(message: str) -> None:
    raise EncodingError(f"invalid cost-model document: {message}")


def validate_cost_model(document: Any) -> dict:
    """Check the cost-model document invariants; returns the document."""
    if not isinstance(document, dict):
        _fail("not an object")
    if document.get("schema") != COST_MODEL_SCHEMA:
        _fail(
            f"schema is {document.get('schema')!r}, "
            f"expected {COST_MODEL_SCHEMA!r}"
        )
    if not isinstance(document.get("source"), str):
        _fail("source must be a string")
    used = document.get("records_used")
    if not isinstance(used, int) or isinstance(used, bool) or used < 0:
        _fail("records_used must be a non-negative integer")
    coefficients = document.get("coefficients")
    if not isinstance(coefficients, dict):
        _fail("coefficients section missing")
    for op, coefs in coefficients.items():
        if not isinstance(coefs, dict):
            _fail(f"coefficients for {op!r} is not an object")
        for key in _COEF_KEYS:
            value = coefs.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                _fail(f"coefficient {op}.{key} is not a number")
            if value < 0:
                _fail(f"coefficient {op}.{key} is negative")
    dispatch = document.get("dispatch")
    if not isinstance(dispatch, dict):
        _fail("dispatch section missing")
    for key in _DISPATCH_KEYS:
        value = dispatch.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            _fail(f"dispatch {key} is not a number")
        if value < 0:
            _fail(f"dispatch {key} is negative")
    if not 0 < dispatch["efficiency"] <= 1:
        _fail("dispatch efficiency must be in (0, 1]")
    ratios = document.get("ratios")
    if not isinstance(ratios, dict):
        _fail("ratios section missing")
    for kind, value in ratios.items():
        if not isinstance(kind, str):
            _fail("ratio key is not a string")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            _fail(f"ratio {kind!r} is not a number")
        if value <= 0:
            _fail(f"ratio {kind!r} is not positive")
    return document


# ------------------------------------------------------------------ fitting


def _solve(matrix: List[List[float]], rhs: List[float]) -> Optional[List[float]]:
    """Gaussian elimination with partial pivoting; None when singular."""
    n = len(rhs)
    aug = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(aug[r][col]))
        if abs(aug[pivot][col]) < 1e-18:
            return None
        aug[col], aug[pivot] = aug[pivot], aug[col]
        for row in range(n):
            if row == col:
                continue
            factor = aug[row][col] / aug[col][col]
            for k in range(col, n + 1):
                aug[row][k] -= factor * aug[col][k]
    return [aug[i][n] / aug[i][i] for i in range(n)]


def _fit_op(rows: List[Tuple[float, float, float, float]],
            seconds: List[float]) -> Optional[Dict[str, float]]:
    """Nonnegative-clamped least squares ``seconds ~ [1, in, unit, out]``.

    Normal equations with a small ridge term for stability; negative
    coefficients are clamped to zero (a cost cannot decrease with more
    work -- negative fits are noise).
    """
    n = len(rows)
    if n < len(_COEF_KEYS):
        return None
    dim = len(_COEF_KEYS)
    ata = [[0.0] * dim for _ in range(dim)]
    atb = [0.0] * dim
    for row, y in zip(rows, seconds):
        for i in range(dim):
            atb[i] += row[i] * y
            for j in range(dim):
                ata[i][j] += row[i] * row[j]
    for i in range(dim):
        ata[i][i] += 1e-9  # ridge: keeps near-collinear designs solvable
    solution = _solve(ata, atb)
    if solution is None:
        return None
    clamped = [max(0.0, x) for x in solution]
    return dict(zip(_COEF_KEYS, clamped))


def fit_cost_model(
    documents: Iterable[dict], source: str = "fit"
) -> CostModel:
    """Calibrate a :class:`CostModel` from ``repro.profile/1`` documents.

    Serial records fit the per-operator coefficients; per-estimator
    actual/estimated totals fit the correction ratios; parallel
    records fit the dispatch overhead from the residual over the
    modeled per-shard serial cost.  Operators or sections without
    enough data keep their defaults -- calibration degrades gracefully
    to the conservative model.
    """
    from repro.obs.ledger import validate_profile

    serial_rows: Dict[str, List[Tuple[float, float, float, float]]] = {}
    serial_secs: Dict[str, List[float]] = {}
    est_totals: Dict[str, List[float]] = {}
    act_totals: Dict[str, List[float]] = {}
    parallel_records: List[dict] = []
    used = 0
    for document in documents:
        document = validate_profile(document)
        for record in document["records"]:
            used += 1
            op = record["op"]
            estimator = record.get("estimator") or op
            est_totals.setdefault(estimator, []).append(float(record["est_out"]))
            act_totals.setdefault(estimator, []).append(float(record["out_tuples"]))
            if record["parallel"]:
                parallel_records.append(record)
                continue
            unit = _unit_of(op, record["in_tuples"], record["out_tuples"])
            serial_rows.setdefault(op, []).append(
                (1.0, float(record["in_tuples"]), unit, float(record["out_tuples"]))
            )
            serial_secs.setdefault(op, []).append(float(record["seconds"]))

    coefficients: Dict[str, Dict[str, float]] = {}
    for op, rows in serial_rows.items():
        fitted = _fit_op(rows, serial_secs[op])
        if fitted is not None:
            coefficients[op] = fitted

    ratios: Dict[str, float] = {}
    for kind, ests in est_totals.items():
        est_sum = sum(ests)
        act_sum = sum(act_totals[kind])
        if est_sum > 0 and act_sum > 0:
            # clamp: one pathological record must not turn the planner blind
            ratios[kind] = min(1e3, max(1e-3, act_sum / est_sum))

    dispatch: Dict[str, float] = {}
    if parallel_records:
        model = CostModel(coefficients=coefficients, ratios=ratios)
        overhead_rows: List[Tuple[float, float, float]] = []
        overhead_secs: List[float] = []
        for record in parallel_records:
            shards = max(1, int(record["shards"]))
            serial = model.op_seconds(
                record["op"], record["in_tuples"], record["out_tuples"]
            )
            residual = record["seconds"] - serial / (
                shards * DEFAULT_DISPATCH["efficiency"]
            )
            overhead_rows.append((1.0, float(shards), float(record["in_tuples"])))
            overhead_secs.append(max(0.0, residual))
        if len(overhead_rows) >= 3:
            dim = 3
            ata = [[0.0] * dim for _ in range(dim)]
            atb = [0.0] * dim
            for row, y in zip(overhead_rows, overhead_secs):
                for i in range(dim):
                    atb[i] += row[i] * y
                    for j in range(dim):
                        ata[i][j] += row[i] * row[j]
            for i in range(dim):
                ata[i][i] += 1e-9
            solution = _solve(ata, atb)
            if solution is not None:
                dispatch = {
                    "base": max(0.0, solution[0]),
                    "per_shard": max(0.0, solution[1]),
                    "per_tuple": max(0.0, solution[2]),
                    "efficiency": DEFAULT_DISPATCH["efficiency"],
                }

    return CostModel(
        coefficients=coefficients,
        dispatch=dispatch or None,
        ratios=ratios,
        source=source,
        records_used=used,
    )


# ------------------------------------------------------------- plan pricing


@dataclass
class PlanEstimate:
    """Per-node cardinality and cost annotation of a plan tree.

    ``rows`` is the estimated output cardinality (generalized tuples),
    ``seconds`` the modeled serial cost of this node alone,
    ``total_seconds`` includes the children, and ``estimator`` names
    the cardinality estimator used (matching the ledger's kinds, so a
    fitted model's ratios apply).  Shared subtrees are priced once:
    repeated ``Shared`` occurrences report ``cached=True`` with zero
    marginal cost.
    """

    label: str
    rows: float
    seconds: float
    total_seconds: float
    estimator: str = ""
    cached: bool = False
    children: List["PlanEstimate"] = field(default_factory=list)
    node: Any = None  #: the plan node this estimate annotates


def estimate_plan(plan, db=None, model: Optional[CostModel] = None) -> PlanEstimate:
    """Annotate ``plan`` with estimated rows and modeled seconds."""
    from repro.core import planner as p

    model = model if model is not None else CostModel()
    shared_seen: Dict[object, PlanEstimate] = {}

    def walk(node) -> PlanEstimate:
        estimate = _walk(node)
        estimate.node = node
        return estimate

    def _walk(node) -> PlanEstimate:
        if isinstance(node, p.Scan):
            rows = 8.0
            if db is not None and node.name in db:
                rows = float(max(1, len(db[node.name])))
            return PlanEstimate(
                f"Scan {node.name}", rows,
                model.op_seconds("scan", rows, rows),
                model.op_seconds("scan", rows, rows),
            )
        if isinstance(node, p.ConstraintScan):
            return PlanEstimate("Constraint", 1.0, 0.0, 0.0)
        if isinstance(node, p.Universe):
            return PlanEstimate("Universe", 1.0, 0.0, 0.0)
        if isinstance(node, p.Empty):
            return PlanEstimate("Empty", 0.0, 0.0, 0.0)
        if isinstance(node, p.Select):
            child = walk(node.source)
            rows = child.rows
            cost = model.op_seconds("select", child.rows, rows)
            return PlanEstimate(
                "Select", rows, cost, cost + child.total_seconds,
                children=[child],
            )
        if isinstance(node, p.Project):
            child = walk(node.source)
            rows = model.corrected("project.input", child.rows)
            cost = model.op_seconds("project", child.rows, rows)
            return PlanEstimate(
                "Project", rows, cost, cost + child.total_seconds,
                estimator="project.input", children=[child],
            )
        if isinstance(node, p.Join):
            children = [walk(part) for part in node.parts]
            # left-deep accumulation, matching execute()'s fold
            rows = children[0].rows
            cost = 0.0
            for child in children[1:]:
                pairs = rows * child.rows
                out = model.corrected("join.cross", pairs)
                cost += model.op_seconds("join", rows + child.rows, out, unit=pairs)
                rows = out
            total = cost + sum(c.total_seconds for c in children)
            return PlanEstimate(
                "Join", rows, cost, total,
                estimator="join.cross", children=children,
            )
        if isinstance(node, p.Union):
            children = [walk(part) for part in node.parts]
            rows = sum(c.rows for c in children)
            cost = model.op_seconds("union", rows, rows)
            total = cost + sum(c.total_seconds for c in children)
            return PlanEstimate("Union", rows, cost, total, children=children)
        if isinstance(node, p.Complement):
            child = walk(node.source)
            # atoms-per-tuple unknown at plan time; the linear regime's
            # per-stage bound with ~(arity + 1) atoms per tuple is the
            # planning proxy (the ledger's complement.linear estimator)
            atoms = child.rows * (len(node.schema) + 1.0)
            rows = model.corrected("complement.linear", 1.0 + 2.0 * atoms)
            cost = model.op_seconds(
                "complement", child.rows, rows, unit=child.rows * rows
            )
            return PlanEstimate(
                "Complement", rows, cost, cost + child.total_seconds,
                estimator="complement.linear", children=[child],
            )
        if isinstance(node, p.Absorb):
            child = walk(node.source)
            rows = model.corrected("absorb.dedup", child.rows)
            cost = model.op_seconds("absorb", child.rows, rows)
            return PlanEstimate(
                "Absorb", rows, cost, cost + child.total_seconds,
                estimator="absorb.dedup", children=[child],
            )
        if isinstance(node, p.Shared):
            cached = shared_seen.get(node)
            if cached is not None:
                return PlanEstimate(
                    "Shared", cached.rows, 0.0, 0.0,
                    cached=True, children=[],
                )
            child = walk(node.source)
            estimate = PlanEstimate(
                "Shared", child.rows, 0.0, child.total_seconds,
                children=[child],
            )
            shared_seen[node] = estimate
            return estimate
        raise EncodingError(
            f"cannot estimate plan node {type(node).__name__}"
        )  # pragma: no cover

    return walk(plan)
