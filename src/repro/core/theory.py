"""The constraint-theory interface, and the dense-order instance.

The engine is parametric in the constraint theory: generalized tuples,
generalized relations, the relational algebra, formula evaluation, and
the Datalog engine all manipulate atoms only through the small
interface defined by :class:`ConstraintTheory`.  The paper's two
languages plug in here:

* :class:`DenseOrderTheory` -- atoms over ``(Q, <=)`` (Sections 2-4);
* :class:`repro.linear.theory.LinearTheory` -- linear atoms with
  addition, for FO+ (Section 4).

A theory must provide, for *conjunctions* of its atoms: satisfiability,
negation of a single atom (as a disjunction of atoms), existential
projection of one variable (as a disjunction of conjunctions),
substitution, canonicalization, and ground evaluation.  Everything else
(DNF bookkeeping, set operations, quantifiers) is theory-independent.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Union

from repro.core.atoms import Atom, Op, atom
from repro.core.ordergraph import OrderGraph
from repro.core.terms import Const, Term, Var
from repro.errors import TheoryError
from repro.perf.cache import KernelEntry, kernel_cache
from repro.perf.columnar import BoundsMatrix, kernel_selector

__all__ = ["ConstraintTheory", "DenseOrderTheory", "DENSE_ORDER"]

#: the process-wide kernel-backend switch (never replaced, only mutated)
_SELECTOR = kernel_selector()


def _kernel(conjunction: Iterable[Atom]):
    """The dense-order kernel for one conjunction under the active backend.

    One attribute read decides between the per-atom object graph and the
    columnar bounds matrix; the two answer every query identically, so
    the choice is purely a performance knob (``REPRO_KERNEL`` /
    ``--kernel``).
    """
    if _SELECTOR.columnar:
        return BoundsMatrix(conjunction)
    return OrderGraph(conjunction)


class ConstraintTheory(ABC):
    """Operations a constraint theory must support.

    Atoms are opaque hashable values; ``True``/``False`` stand for the
    trivially valid / unsatisfiable atom throughout.
    """

    #: short name used in reprs and error messages
    name: str = "abstract"

    def __eq__(self, other: object) -> bool:
        """Theories are value objects: two separately constructed
        instances of the same (stateless) theory class are the same
        theory.  Identity checks remain valid — equal instances are
        interchangeable — but callers comparing theories should use
        ``==``."""
        return type(self) is type(other) and self.name == other.name

    def __hash__(self) -> int:
        return hash((type(self), self.name))

    @abstractmethod
    def atom_variables(self, a) -> FrozenSet[Var]:
        """The variables occurring in atom ``a``."""

    @abstractmethod
    def atom_constants(self, a) -> FrozenSet[Fraction]:
        """The rational constants occurring in atom ``a``."""

    @abstractmethod
    def negate_atom(self, a) -> List:
        """The negation of ``a`` as a disjunction (list) of atoms."""

    @abstractmethod
    def substitute_atom(self, a, mapping: Mapping[Var, Term]) -> Union[object, bool]:
        """Apply a variable-to-term substitution; may fold to a bool."""

    @abstractmethod
    def is_satisfiable(self, conjunction: Iterable) -> bool:
        """Satisfiability of a conjunction of atoms over Q."""

    @abstractmethod
    def project_out(self, conjunction: Sequence, var: Var) -> List[List]:
        """Existentially eliminate ``var`` from a conjunction.

        Returns a disjunction (list) of conjunctions (lists of atoms)
        equivalent to ``exists var . /\\ conjunction``.  For both dense
        order and linear constraints the result is a single conjunction,
        but the interface allows case splits.
        """

    @abstractmethod
    def canonicalize(self, conjunction: Iterable) -> FrozenSet:
        """A canonical frozenset of atoms for a satisfiable conjunction.

        Logically stronger than syntactic dedup: equivalent conjunctions
        over the same terms should normalize identically whenever the
        theory can afford it.  Soundness requirement: the canonical set
        must be logically equivalent to the input conjunction.
        """

    @abstractmethod
    def evaluate_atom(self, a, assignment: Mapping[Var, Fraction]) -> bool:
        """Ground truth of ``a`` under a total rational assignment."""

    @abstractmethod
    def entails(self, conjunction: Iterable, a) -> bool:
        """Does the conjunction imply atom ``a``?  (Used for pruning.)"""

    @abstractmethod
    def solve(self, conjunction: Iterable) -> Optional[Dict[Var, Fraction]]:
        """A rational witness of a conjunction, or None if unsatisfiable."""

    @abstractmethod
    def equality_atom(self, left: Term, right: Term) -> Union[object, bool]:
        """The atom ``left = right`` in this theory's language."""

    @abstractmethod
    def weaken_atom(self, a) -> object:
        """The non-strict version of ``a`` (``<`` becomes ``<=``).

        Weakening every atom of a *satisfiable* convex conjunction
        yields exactly its topological closure -- the fact behind the
        region-connectivity algorithm in :mod:`repro.linear.region`.
        """

    # ------------------------------------------------------------ conveniences

    def make_entailer(self, conjunction: Iterable):
        """A reusable ``atom -> bool`` entailment checker for one conjunction.

        Theories override this when repeated checks against the same
        conjunction can share preprocessing (the dense-order theory
        reuses one transitive closure).
        """
        atoms = list(conjunction)
        return lambda a: self.entails(atoms, a)

    def canonicalize_if_satisfiable(self, conjunction: Iterable) -> Optional[FrozenSet]:
        """Fused satisfiability + canonicalization (None when unsat)."""
        atoms = list(conjunction)
        if not self.is_satisfiable(atoms):
            return None
        return self.canonicalize(atoms)

    def conjunction_variables(self, conjunction: Iterable) -> FrozenSet[Var]:
        out: set = set()
        for a in conjunction:
            out |= self.atom_variables(a)
        return frozenset(out)

    def conjunction_constants(self, conjunction: Iterable) -> FrozenSet[Fraction]:
        out: set = set()
        for a in conjunction:
            out |= self.atom_constants(a)
        return frozenset(out)


class DenseOrderTheory(ConstraintTheory):
    """The theory of ``(Q, <=)``: dense linear order without endpoints.

    Atoms are :class:`repro.core.atoms.Atom` with operators in
    ``{LT, LE, EQ}`` (NE is expanded on entry).  Quantifier elimination
    relies on the two characteristic axioms:

    * density:       ``exists x (l < x and x < u)  <=>  l < u``
    * no endpoints:  ``exists x (l < x)`` and ``exists x (x < u)`` hold.
    """

    name = "dense-order"

    # ------------------------------------------------------------ kernel memo
    #
    # Every query below bottoms out in a kernel (OrderGraph or, under
    # REPRO_KERNEL=columnar, a BoundsMatrix) over the same conjunction;
    # the process-wide KernelCache memoizes that kernel (and the
    # canonical form derived from it) keyed by frozenset(atoms).
    # Atoms are immutable value objects and the kernel is only queried,
    # never extended, so entries never go stale -- and because both
    # backends answer identically, an entry built under one backend
    # stays valid after a runtime switch.  The disabled path
    # (``--no-cache``) is a single attribute read before falling through
    # to the direct kernel.

    def _entry(self, conjunction: Iterable[Atom]) -> KernelEntry:
        cache = kernel_cache()
        key = (
            conjunction
            if isinstance(conjunction, frozenset)
            else frozenset(conjunction)
        )
        entry = cache.lookup(key)
        if entry is None:
            entry = KernelEntry(_kernel(key))
            cache.store(key, entry)
        return entry

    def coerce_atom(self, a: Union[Atom, bool]) -> Union[Atom, bool]:
        """Validate/normalize an atom for storage in a conjunction."""
        if isinstance(a, bool):
            return a
        if not isinstance(a, Atom):
            raise TheoryError(f"not a dense-order atom: {a!r}")
        if a.op in (Op.GE, Op.GT):  # pragma: no cover - atom() normalizes
            raise TheoryError("unnormalized atom")
        if a.op is Op.NE:
            raise TheoryError(
                "NE atoms cannot appear in conjunctions; expand to LT/GT disjunction"
            )
        return a

    def atom_variables(self, a: Atom) -> FrozenSet[Var]:
        return a.variables

    def atom_constants(self, a: Atom) -> FrozenSet[Fraction]:
        return a.constants

    def negate_atom(self, a: Atom) -> List[Atom]:
        return a.negate()

    def substitute_atom(self, a: Atom, mapping: Mapping[Var, Term]) -> Union[Atom, bool]:
        return a.substitute(mapping)

    def is_satisfiable(self, conjunction: Iterable[Atom]) -> bool:
        if not kernel_cache().enabled:
            return _kernel(conjunction).is_satisfiable()
        return self._entry(conjunction).graph.is_satisfiable()

    def project_out(self, conjunction: Sequence[Atom], var: Var) -> List[List[Atom]]:
        """Eliminate ``exists var`` from an NE-free conjunction.

        If some atom pins ``var = t``, substitute ``t``.  Otherwise all
        atoms mentioning ``var`` are one-sided bounds; compose each
        lower bound with each upper bound.  The composed comparison is
        strict unless *both* bounds are weak:

            exists x (l <= x and x <= u)  <=>  l <= u
            exists x (l <  x and x <= u)  <=>  l <  u      (density)

        One-sided (or empty) bound sets eliminate to nothing at all
        because the order has no endpoints.
        """
        keep: List[Atom] = []
        lowers: List[tuple] = []  # (term, strict)
        uppers: List[tuple] = []
        pin: Optional[Term] = None
        for a in conjunction:
            if var not in a.variables:
                keep.append(a)
                continue
            if a.op is Op.EQ:
                pin = a.right if a.left == var else a.left
                continue
            if a.left == var and a.right == var:  # pragma: no cover - folded earlier
                continue
            if a.left == var:
                uppers.append((a.right, a.op is Op.LT))
            else:
                lowers.append((a.left, a.op is Op.LT))
        if pin is not None:
            mapping = {var: pin}
            out: List[Atom] = []
            for a in conjunction:
                if a.op is Op.EQ and (
                    (a.left == var and a.right == pin) or (a.right == var and a.left == pin)
                ):
                    continue
                sub = a.substitute(mapping)
                if sub is True:
                    continue
                if sub is False:
                    return []
                out.append(sub)
            return [out]
        for low, low_strict in lowers:
            for high, high_strict in uppers:
                op = Op.LT if (low_strict or high_strict) else Op.LE
                made = atom(low, op, high)
                if made is True:
                    continue
                if made is False:
                    return []
                keep.append(made)
        return [keep]

    def canonicalize(self, conjunction: Iterable[Atom]) -> FrozenSet[Atom]:
        if not kernel_cache().enabled:
            return _kernel(conjunction).canonical_atoms()
        # canonical_atoms (not KernelEntry.canonical) so an unsatisfiable
        # input raises TheoryError exactly as the uncached kernel does
        return self._entry(conjunction).graph.canonical_atoms()

    def evaluate_atom(self, a: Atom, assignment: Mapping[Var, Fraction]) -> bool:
        return a.evaluate(assignment)

    def entails(self, conjunction: Iterable[Atom], a: Atom) -> bool:
        if not kernel_cache().enabled:
            return _kernel(conjunction).implies(a)
        return self._entry(conjunction).graph.implies(a)

    def solve(self, conjunction: Iterable[Atom]) -> Optional[Dict[Var, Fraction]]:
        if not kernel_cache().enabled:
            return _kernel(conjunction).solve()
        return self._entry(conjunction).graph.solve()

    def make_entailer(self, conjunction: Iterable[Atom]):
        if not kernel_cache().enabled:
            return _kernel(conjunction).implies
        return self._entry(conjunction).graph.implies

    def canonicalize_if_satisfiable(
        self, conjunction: Iterable[Atom]
    ) -> Optional[FrozenSet[Atom]]:
        if not kernel_cache().enabled:
            kernel = _kernel(conjunction)
            if not kernel.is_satisfiable():
                return None
            return kernel.canonical_atoms()
        return self._entry(conjunction).canonical()

    def equality_atom(self, left: Term, right: Term) -> Union[Atom, bool]:
        from repro.core.atoms import eq

        return eq(left, right)

    def weaken_atom(self, a: Atom) -> Atom:
        if a.op is Op.LT:
            return Atom(a.left, Op.LE, a.right)
        return a


#: the shared dense-order theory instance
DENSE_ORDER = DenseOrderTheory()
