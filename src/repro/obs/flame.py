"""Flame-graph export: collapsed stacks and speedscope documents.

Turns a ``repro.trace/1`` document into the two interchange formats
the flame-graph ecosystem reads:

* :func:`collapsed_stacks` — Brendan Gregg's collapsed-stack text, one
  ``root;child;leaf <weight>`` line per distinct span path, weights in
  integer microseconds of *self* time (``flamegraph.pl``, ``inferno``,
  and speedscope itself all ingest this);

* :func:`speedscope_document` — a speedscope file
  (https://www.speedscope.app/file-format-schema.json) using the
  ``sampled`` profile type: shared frame table + one sample (a stack
  of frame indices) per span with its self time as the weight.

``sampled`` rather than ``evented`` is deliberate: stitched parallel
traces contain *overlapping sibling* spans (several workers running at
once under one dispatch span), which cannot be serialized as a
well-nested open/close event stream, but are perfectly representable
as weighted stacks.  Both exports share one self-time computation —
span duration minus summed child durations, clamped at zero — so the
text and JSON views of a trace always agree.

:func:`validate_speedscope` structurally checks a document against the
parts of the speedscope schema that matter (frame-index bounds, weight
arity, profile bounds) so tests and the CLI can assert exports are
loadable without shipping a JSON-schema engine.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.errors import EncodingError
from repro.obs.analyze import span_self_seconds

__all__ = [
    "SPEEDSCOPE_SCHEMA",
    "collapsed_stacks",
    "speedscope_document",
    "validate_speedscope",
    "write_flame",
]

#: the schema URL stamped on every exported speedscope document
SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def _span_stacks(document: dict) -> List[Tuple[Tuple[str, ...], float]]:
    """One ``(name path from root, self seconds)`` entry per closed
    span, in document order.  Open spans contribute nothing (no
    duration); a span whose parent never closed roots its own stack."""
    spans = [s for s in document.get("spans", ()) if s.get("end") is not None]
    by_id = {s["id"]: s for s in spans}
    self_seconds = span_self_seconds(spans)
    paths: Dict[int, Tuple[str, ...]] = {}

    def path_of(span: dict) -> Tuple[str, ...]:
        cached = paths.get(span["id"])
        if cached is not None:
            return cached
        parent = by_id.get(span["parent"])
        path = (path_of(parent) if parent is not None else ()) + (span["name"],)
        paths[span["id"]] = path
        return path

    return [(path_of(s), self_seconds[s["id"]]) for s in spans]


def collapsed_stacks(document: dict) -> str:
    """The trace in collapsed-stack text: ``a;b;c <microseconds>``
    lines, weights summed over spans sharing a path, zero-weight paths
    dropped, sorted for deterministic output."""
    weights: Dict[Tuple[str, ...], int] = {}
    for path, seconds in _span_stacks(document):
        micros = int(round(seconds * 1e6))
        if micros <= 0:
            continue
        weights[path] = weights.get(path, 0) + micros
    return "\n".join(
        f"{';'.join(path)} {weights[path]}" for path in sorted(weights)
    )


def speedscope_document(document: dict, *, name: str = "repro trace") -> dict:
    """The trace as a speedscope ``sampled`` profile.

    Every closed span becomes one sample — its root-to-span name path
    as frame indices — weighted by its self time in seconds.  The
    profile's ``endValue`` is the total weight, so speedscope's
    percentages read as shares of traced wall time.
    """
    frames: List[dict] = []
    frame_index: Dict[str, int] = {}
    samples: List[List[int]] = []
    weights: List[float] = []
    for path, seconds in _span_stacks(document):
        if seconds <= 0.0:
            continue
        stack = []
        for frame_name in path:
            index = frame_index.get(frame_name)
            if index is None:
                index = frame_index[frame_name] = len(frames)
                frames.append({"name": frame_name})
            stack.append(index)
        samples.append(stack)
        weights.append(seconds)
    total = sum(weights)
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "name": name,
        "exporter": "repro.obs.flame",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "seconds",
                "startValue": 0.0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        ],
        "activeProfileIndex": 0,
    }


def _fail(reason: str) -> None:
    raise EncodingError(f"invalid speedscope document: {reason}")


def validate_speedscope(document: dict) -> dict:
    """Structurally validate a speedscope document; returns it.

    Checks the invariants a speedscope loader relies on: the schema
    stamp, a shared frame table of named frames, and for each sampled
    profile that every sample is a stack of in-bounds frame indices
    with exactly one weight per sample.  Raises
    :class:`~repro.errors.EncodingError` on violation.
    """
    if not isinstance(document, dict):
        _fail("not an object")
    if document.get("$schema") != SPEEDSCOPE_SCHEMA:
        _fail(f"bad $schema {document.get('$schema')!r}")
    shared = document.get("shared")
    if not isinstance(shared, dict) or not isinstance(
        shared.get("frames"), list
    ):
        _fail("missing shared.frames")
    frames = shared["frames"]
    for i, frame in enumerate(frames):
        if not isinstance(frame, dict) or not isinstance(
            frame.get("name"), str
        ):
            _fail(f"frame {i} has no name")
    profiles = document.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        _fail("no profiles")
    for p, profile in enumerate(profiles):
        kind = profile.get("type")
        if kind != "sampled":
            _fail(f"profile {p} has unsupported type {kind!r}")
        if not isinstance(profile.get("unit"), str):
            _fail(f"profile {p} has no unit")
        samples = profile.get("samples")
        weights = profile.get("weights")
        if not isinstance(samples, list) or not isinstance(weights, list):
            _fail(f"profile {p} missing samples/weights")
        if len(samples) != len(weights):
            _fail(
                f"profile {p} has {len(samples)} sample(s) but "
                f"{len(weights)} weight(s)"
            )
        for s, stack in enumerate(samples):
            if not isinstance(stack, list) or not stack:
                _fail(f"profile {p} sample {s} is not a non-empty stack")
            for index in stack:
                if not isinstance(index, int) or not (0 <= index < len(frames)):
                    _fail(
                        f"profile {p} sample {s} frame index {index!r} "
                        f"out of bounds (table has {len(frames)})"
                    )
        for w, weight in enumerate(weights):
            if not isinstance(weight, (int, float)) or weight < 0:
                _fail(f"profile {p} weight {w} is {weight!r}")
        total = sum(weights)
        end = profile.get("endValue")
        if not isinstance(end, (int, float)) or end + 1e-9 < total:
            _fail(
                f"profile {p} endValue {end!r} below total weight {total!r}"
            )
    return document


def write_flame(
    path: str, document: dict, *, fmt: str = "speedscope",
    name: str = "repro trace",
) -> str:
    """Write a trace's flame export to ``path`` (the ``repro trace
    flame -o`` surface); ``fmt`` is ``"speedscope"`` (validated JSON)
    or ``"collapsed"`` (text).  Returns the path for chaining."""
    if fmt == "speedscope":
        payload = json.dumps(
            validate_speedscope(speedscope_document(document, name=name)),
            indent=2,
            sort_keys=True,
        )
    elif fmt == "collapsed":
        payload = collapsed_stacks(document)
    else:
        raise EncodingError(f"unknown flame format {fmt!r}")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.write("\n")
    return path
