"""Cross-process trace stitching: worker telemetry → the parent tracer.

The shard kernels run inside pool workers where the parent's tracer is
invisible (a forked worker inheriting the parent's context variables
must not recurse into the parallel path; see
:mod:`repro.parallel.worker`).  Before this layer, every parallel run
had a blind spot exactly where the time went.  The seam has two halves:

* **worker side** — :func:`snapshot_telemetry` flattens one in-worker
  :class:`~repro.obs.trace.Tracer` (spans, events, metric deltas
  including the ``kernel.*`` cache counters, and the ``repro.log/1``
  records a :class:`~repro.obs.sink.CollectingSink` captured) into a
  picklable ``repro.worker-telemetry/1`` dict that rides back in the
  shard's :class:`~repro.parallel.worker.ShardEnvelope`;

* **parent side** — :func:`stitch_telemetry` grafts the snapshot into
  the parent tracer at harvest time: span ids are remapped onto the
  parent's id sequence, the grafted roots are parented under the
  innermost open span (the backend drivers keep a
  ``parallel.<op>.dispatch`` span open across the dispatch) and
  stamped with ``pid`` / ``shard`` / ``attempt`` (plus
  ``quarantined`` when the resilience layer re-ran the shard
  in-process), worker metric deltas merge into the parent registry,
  and worker log records replay through the parent's sinks and the
  flight recorder with the parent's trace id.

Two clocks, one timeline: worker span times are seconds on the
*worker's* monotonic clock relative to the worker tracer's epoch.
Monotonic clocks differ across processes by offset only, so the graft
shifts every worker timestamp by one constant — chosen so the latest
worker span end lands at the parent's harvest instant — and clamps
into the open parent span, preserving the nesting invariants
:func:`repro.obs.export.validate_trace` checks.

Double-count avoidance: ``kernel.*`` counters are process-wide, so a
*thread*-pool worker's (or a quarantined re-run's) cache traffic is
already inside the parent tracer's own baseline delta.  Snapshots
whose ``pid`` matches the stitching process therefore contribute
spans, events, and log-sink replay, but **not** ``kernel.*`` counter
merges or flight-recorder re-records (the worker tracer already hit
the process-global ring).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.obs.flightrec import record as _flight_record
from repro.obs.metrics import histogram_from_snapshot
from repro.obs.sink import level_number
from repro.obs.trace import SpanRecord, Tracer

__all__ = [
    "WORKER_TELEMETRY_SCHEMA",
    "snapshot_telemetry",
    "stitch_telemetry",
]

#: schema identifier stamped on every worker telemetry snapshot
WORKER_TELEMETRY_SCHEMA = "repro.worker-telemetry/1"

#: the metric prefix whose counters are process-wide (see docstring)
_KERNEL_PREFIX = "kernel."


def snapshot_telemetry(tracer: Tracer, logs: List[dict]) -> dict:
    """Flatten a (deactivated) in-worker tracer into a picklable dict.

    ``logs`` is the record list of the :class:`CollectingSink` that was
    attached for the shard (the tracer itself holds live sink objects
    and is not picklable).  Span attributes must already be picklable —
    the worker span layer only attaches scalars.
    """
    return {
        "schema": WORKER_TELEMETRY_SCHEMA,
        "pid": os.getpid(),
        "trace": tracer.trace_id,
        "spans": [
            (s.span_id, s.parent_id, s.name, s.start, s.end, dict(s.attrs))
            for s in tracer.spans
        ],
        "events": [dict(e) for e in tracer.events],
        "counters": dict(tracer.metrics.counters),
        "histograms": {
            name: h.snapshot() for name, h in tracer.metrics.histograms.items()
        },
        "logs": list(logs),
        "dropped_spans": tracer.dropped_spans,
    }


def _merge_histogram(metrics, name: str, aggregate: dict) -> None:
    other = histogram_from_snapshot(aggregate)
    mine = metrics.histograms.get(name)
    if mine is None:
        mine = metrics.histograms[name] = other
    else:
        mine.merge(other)


def stitch_telemetry(
    tracer: Optional[Tracer],
    snapshot: Optional[dict],
    *,
    shard: int,
    attempt: int,
    quarantined: bool = False,
) -> Dict[str, int]:
    """Graft one worker snapshot into ``tracer``; returns the worker's
    ``kernel.*`` counter deltas (prefix stripped) when the snapshot
    came from *another* process, ``{}`` otherwise — the cost ledger's
    worker-cache attribution (see :class:`repro.obs.ledger.CostRecord`).

    Never raises on a malformed snapshot: stitching is telemetry, and
    telemetry must not be the thing that fails a recovered shard.
    """
    if tracer is None or not isinstance(snapshot, dict):
        return {}
    try:
        return _stitch(tracer, snapshot, shard, attempt, quarantined)
    except Exception:  # pragma: no cover - defensive: drop, don't fail
        tracer.metrics.count("parallel.stitch_errors")
        return {}


def _stitch(
    tracer: Tracer,
    snapshot: dict,
    shard: int,
    attempt: int,
    quarantined: bool,
) -> Dict[str, int]:
    worker_pid = snapshot.get("pid")
    same_process = worker_pid == os.getpid()
    graft_under = tracer._stack[-1] if tracer._stack else None
    graft_parent = graft_under.span_id if graft_under is not None else None
    floor = graft_under.start if graft_under is not None else 0.0

    # one constant shift maps the worker clock onto the parent timeline:
    # the latest worker end lands at the parent's harvest instant
    spans = snapshot.get("spans") or ()
    ends = [s[4] for s in spans if s[4] is not None]
    shift = tracer.now() - (max(ends) if ends else 0.0)

    id_map: Dict[int, int] = {}
    for old_id, old_parent, name, start, end, attrs in spans:
        if len(tracer.spans) >= tracer.max_spans:
            tracer.dropped_spans += 1
            continue
        tracer._next_id += 1
        id_map[old_id] = tracer._next_id
        attrs = dict(attrs)
        if old_parent in id_map:
            parent = id_map[old_parent]
        else:
            # a worker root (or an orphan whose parent was dropped):
            # graft under the dispatch span and stamp provenance
            parent = graft_parent
            attrs.setdefault("pid", worker_pid)
            attrs["shard"] = shard
            attrs["attempt"] = attempt
            if quarantined:
                attrs["quarantined"] = True
        start = max(start + shift, floor)
        record = SpanRecord(id_map[old_id], parent, name, start, attrs)
        record.end = max(end + shift, start) if end is not None else start
        tracer.spans.append(record)

    for entry in snapshot.get("events") or ():
        if len(tracer.events) >= tracer.max_spans:
            tracer.dropped_spans += 1
            continue
        tracer.events.append({
            "name": entry.get("name", "?"),
            "time": max(float(entry.get("time", 0.0)) + shift, floor),
            "parent": id_map.get(entry.get("parent"), graft_parent),
            "attrs": dict(entry.get("attrs") or {}),
        })

    kernel_delta: Dict[str, int] = {}
    for name, value in (snapshot.get("counters") or {}).items():
        if name.startswith(_KERNEL_PREFIX):
            if same_process:
                # process-wide counters: the parent's own baseline
                # delta already covers a same-process worker
                continue
            kernel_delta[name[len(_KERNEL_PREFIX):]] = value
        tracer.metrics.count(name, value)
    for name, aggregate in (snapshot.get("histograms") or {}).items():
        _merge_histogram(tracer.metrics, name, aggregate)

    for record in snapshot.get("logs") or ():
        rewritten = dict(record)
        rewritten["trace"] = tracer.trace_id
        rewritten["span"] = id_map.get(rewritten.get("span"), graft_parent)
        rewritten["ts"] = max(float(rewritten.get("ts", 0.0)) + shift, floor)
        attrs = dict(rewritten.get("attrs") or {})
        attrs.setdefault("worker_pid", worker_pid)
        attrs.setdefault("shard", shard)
        rewritten["attrs"] = attrs
        if not same_process:
            # a same-process worker tracer already hit the ring live
            _flight_record(rewritten)
        if tracer.sinks:
            severity = level_number(rewritten.get("level", "debug"))
            for sink in tracer.sinks:
                if severity >= level_number(sink.min_level):
                    sink.emit(rewritten)

    tracer.dropped_spans += int(snapshot.get("dropped_spans") or 0)
    tracer.metrics.count("parallel.stitched_shards")
    if id_map:
        tracer.metrics.count("parallel.stitched_spans", len(id_map))
    return kernel_delta
