"""Pluggable telemetry sinks: where structured log records go.

A :class:`Sink` consumes the log records a
:class:`~repro.obs.trace.Tracer` emits (see :mod:`repro.obs.log` for
the record shape).  Sinks are attached to a tracer with
``tracer.add_sink(...)`` and are *pull-free*: the tracer pushes each
record at emission time, filtered by the sink's ``min_level``, so a
sink never has to poll and the disabled path (no tracer active) costs
the instrumented sites nothing.

Three concrete sinks cover the deployment shapes the ROADMAP's
production north-star needs:

* :class:`JsonlSink` — one JSON object per line to a file or handle,
  the interchange format log shippers ingest;
* :class:`RingBufferSink` — a bounded in-memory ring keeping the last
  *N* records; the flight recorder (:mod:`repro.obs.flightrec`) is
  built on one of these;
* :class:`CollectingSink` — an unbounded list, for tests and
  interactive inspection.

Metrics travel separately: :func:`prometheus_text` renders a
:class:`~repro.obs.metrics.Metrics` snapshot in the Prometheus text
exposition format (counters as ``counter``, histograms as ``summary``
plus ``_min``/``_max`` gauges), and :func:`write_prometheus` writes it
atomically enough for a scrape-by-file setup (write + rename is
overkill here; one process owns the file per run).
"""

from __future__ import annotations

import json
import re
from collections import deque
from typing import IO, Dict, List, Optional, Union

__all__ = [
    "LEVELS",
    "level_number",
    "Sink",
    "CollectingSink",
    "RingBufferSink",
    "JsonlSink",
    "prometheus_text",
    "write_prometheus",
]

#: recognized log levels, in severity order
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def level_number(level: str) -> int:
    """The numeric severity of a level name (unknown names rank lowest)."""
    return LEVELS.get(level, 0)


class Sink:
    """Base class: receives each record at emission time.

    ``min_level`` filters: records below it are never delivered (the
    tracer checks before calling :meth:`emit`, so a verbose sink does
    not tax a quiet one).
    """

    min_level: str = "debug"

    def emit(self, record: dict) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered output downstream (no-op by default)."""

    def close(self) -> None:
        """Release resources; the sink must not be emitted to after."""


class CollectingSink(Sink):
    """Keeps every record in a list (tests, interactive sessions)."""

    def __init__(self, min_level: str = "debug") -> None:
        self.min_level = min_level
        self.records: List[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)


class RingBufferSink(Sink):
    """Keeps the last ``capacity`` records; older ones fall off.

    ``dropped`` counts the records that fell off the ring — the reader
    of a snapshot can tell "these are all the events" apart from
    "these are merely the most recent ones".
    """

    def __init__(self, capacity: int = 256, min_level: str = "debug") -> None:
        self.min_level = min_level
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self.dropped = 0

    def emit(self, record: dict) -> None:
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(record)

    def snapshot(self) -> List[dict]:
        """The retained records, oldest first."""
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._ring)


class JsonlSink(Sink):
    """Writes one compact JSON object per line (the ``--log-jsonl``
    CLI surface).  Accepts a path (opened lazily, closed by
    :meth:`close`) or an already-open handle (left open)."""

    def __init__(
        self,
        target: Union[str, IO[str]],
        min_level: str = "debug",
    ) -> None:
        self.min_level = min_level
        self.lines_written = 0
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False

    def emit(self, record: dict) -> None:
        self._handle.write(
            json.dumps(record, sort_keys=True, default=str, separators=(",", ":"))
        )
        self._handle.write("\n")
        self.lines_written += 1

    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        if self._owns_handle:
            self._handle.close()


# --------------------------------------------------------- metrics snapshots

_METRIC_NAME = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str, namespace: str) -> str:
    return f"{namespace}_{_METRIC_NAME.sub('_', name)}"


def prometheus_text(metrics, namespace: str = "repro") -> str:
    """A :class:`~repro.obs.metrics.Metrics` registry (or its
    ``snapshot()`` dict) in the Prometheus text exposition format.

    Counters become ``counter`` samples; histograms become ``summary``
    metrics — ``{quantile="0.5"|"0.95"|"0.99"}`` samples estimated from
    the registry's power-of-two buckets, plus the ``_count``/``_sum``
    pair and ``_min``/``_max`` gauges bounding the estimates.
    """
    snapshot = metrics.snapshot() if hasattr(metrics, "snapshot") else metrics
    lines: List[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = _metric_name(name, namespace)
        lines.append(f"# HELP {metric} repro counter {name}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {snapshot['counters'][name]}")
    for name in sorted(snapshot.get("histograms", {})):
        aggregate = snapshot["histograms"][name]
        metric = _metric_name(name, namespace)
        lines.append(f"# HELP {metric} repro histogram {name}")
        lines.append(f"# TYPE {metric} summary")
        for label, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            value = aggregate.get(key)
            if value is not None:
                lines.append(f'{metric}{{quantile="{label}"}} {value}')
        lines.append(f"{metric}_count {aggregate['count']}")
        lines.append(f"{metric}_sum {aggregate['total']}")
        for bound in ("min", "max"):
            value = aggregate.get(bound)
            if value is not None:
                lines.append(f"# TYPE {metric}_{bound} gauge")
                lines.append(f"{metric}_{bound} {value}")
    lines.append("")
    return "\n".join(lines)


def write_prometheus(
    path: str, metrics, namespace: str = "repro"
) -> Optional[str]:
    """Write the metrics snapshot to ``path`` (the ``--metrics-out``
    CLI surface); returns the path for chaining."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(metrics, namespace))
    return path
