"""Structured JSON export of traces, and the schema round-trip.

A *trace document* is the serialized form of one
:class:`~repro.obs.trace.Tracer` (plus, optionally, the
:class:`~repro.runtime.guard.EvaluationGuard` stats of the same run):

::

    {
      "schema": "repro.trace/1",
      "spans":   [{"id", "parent", "name", "start", "end", "attrs"}, ...],
      "events":  [{"name", "time", "parent", "attrs"}, ...],
      "metrics": {"counters": {...}, "histograms": {...}},
      "guard":   {...} | null,
      "dropped_spans": 0
    }

``start``/``end`` are seconds on a monotonic clock relative to the
tracer's epoch.  :func:`validate_trace` checks the invariants the
schema promises (parent references resolve, spans close after they
open, children nest inside their parents), so a document that loads
cleanly can be consumed by downstream tooling
(``benchmarks/collect_results.py`` ingests these into
``BENCH_PROFILES.json``) without defensive code.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.errors import EncodingError
from repro.obs.trace import Tracer

__all__ = [
    "TRACE_SCHEMA",
    "trace_document",
    "write_trace",
    "load_trace",
    "validate_trace",
    "guard_stats_table",
    "kernel_stats_table",
]

#: schema identifier stamped on every exported document
TRACE_SCHEMA = "repro.trace/1"

_JSON_SCALARS = (str, int, float, bool, type(None))


def _jsonable(value: Any) -> Any:
    """Coerce an attribute value to a JSON-safe scalar (str fallback)."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        return value
    return str(value)


def _attrs(attrs: dict) -> dict:
    return {str(k): _jsonable(v) for k, v in attrs.items()}


def trace_document(tracer: Tracer, guard=None) -> dict:
    """The tracer (and optional guard stats) as a plain JSON-safe dict."""
    return {
        "schema": TRACE_SCHEMA,
        "spans": [
            {
                "id": s.span_id,
                "parent": s.parent_id,
                "name": s.name,
                "start": s.start,
                "end": s.end,
                "attrs": _attrs(s.attrs),
            }
            for s in tracer.spans
        ],
        "events": [
            {
                "name": e["name"],
                "time": e["time"],
                "parent": e["parent"],
                "attrs": _attrs(e["attrs"]),
            }
            for e in tracer.events
        ],
        "metrics": tracer.metrics.snapshot(),
        "guard": guard.stats() if guard is not None else None,
        "dropped_spans": tracer.dropped_spans,
    }


def write_trace(path: str, tracer: Tracer, guard=None) -> dict:
    """Serialize the tracer to ``path`` (validated first); returns the doc."""
    document = validate_trace(trace_document(tracer, guard))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def load_trace(path: str) -> dict:
    """Read and validate a trace document from disk."""
    with open(path, encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as error:
            raise EncodingError(f"trace file {path!r} is not JSON: {error}") from None
    return validate_trace(document)


def _fail(message: str) -> None:
    raise EncodingError(f"invalid trace document: {message}")


def validate_trace(document: Any) -> dict:
    """Check the trace-document invariants; returns the document."""
    if not isinstance(document, dict):
        _fail("not an object")
    if document.get("schema") != TRACE_SCHEMA:
        _fail(f"schema is {document.get('schema')!r}, expected {TRACE_SCHEMA!r}")
    spans = document.get("spans")
    events = document.get("events")
    metrics = document.get("metrics")
    if not isinstance(spans, list) or not isinstance(events, list):
        _fail("spans/events must be arrays")
    if not isinstance(metrics, dict) or not all(
        isinstance(metrics.get(key), dict) for key in ("counters", "histograms")
    ):
        _fail("metrics must hold counters and histograms objects")

    by_id: dict = {}
    for entry in spans:
        if not isinstance(entry, dict):
            _fail("span is not an object")
        for key in ("id", "parent", "name", "start", "end", "attrs"):
            if key not in entry:
                _fail(f"span missing key {key!r}")
        if not isinstance(entry["name"], str):
            _fail("span name is not a string")
        if entry["id"] in by_id:
            _fail(f"duplicate span id {entry['id']}")
        by_id[entry["id"]] = entry
    for entry in spans:
        parent = entry["parent"]
        if parent == entry["id"]:
            _fail(f"span {entry['id']} is its own parent")
        if parent is not None and parent not in by_id:
            _fail(f"span {entry['id']} references unknown parent {parent}")
        start, end = entry["start"], entry["end"]
        if end is not None and end < start:
            _fail(f"span {entry['id']} closes before it opens")
        if parent is not None:
            outer = by_id[parent]
            if start < outer["start"]:
                _fail(f"span {entry['id']} starts before its parent")
    # parent chains must reach a root: stitching rewrites parent ids, so
    # a cycle (A under B under A) is a representable corruption, not a
    # can't-happen — walk each chain once with a memo of known-safe ids
    safe: set = set()
    for entry in spans:
        seen: list = []
        node = entry["id"]
        while node is not None and node not in safe:
            if node in seen:
                _fail(f"span parent chain contains a cycle at {node}")
            seen.append(node)
            node = by_id[node]["parent"]
        safe.update(seen)
    for entry in events:
        if not isinstance(entry, dict) or "name" not in entry or "time" not in entry:
            _fail("event missing name/time")
        parent = entry.get("parent")
        if parent is not None and parent not in by_id:
            _fail(f"event references unknown parent {parent}")
    for name, value in metrics["counters"].items():
        if not isinstance(value, int):
            _fail(f"counter {name!r} is not an integer")
    for name, value in metrics["histograms"].items():
        if not isinstance(value, dict) or "count" not in value:
            _fail(f"histogram {name!r} lacks aggregates")
    return document


def guard_stats_table(stats: dict) -> str:
    """The ``EvaluationGuard.stats()`` payload as an aligned text table
    (the ``--stats`` CLI surface; also useful interactively)."""
    lines = [
        "guard stats: "
        f"elapsed {stats['elapsed']:.4f}s, ticks {stats['ticks']}, "
        f"tuples {stats['tuples_materialized']}, "
        f"rounds {stats['rounds_completed']}, "
        f"max depth {stats['max_depth_seen']}"
    ]
    sites = stats.get("sites") or {}
    if sites:
        width = max(len(name) for name in sites)
        lines.append(f"  {'site'.ljust(width)}  count")
        for name in sorted(sites):
            lines.append(f"  {name.ljust(width)}  {sites[name]}")
    else:
        lines.append("  (no per-site counters recorded)")
    return "\n".join(lines)


def kernel_stats_table(stats: dict, merged: Optional[dict] = None) -> str:
    """The :func:`repro.perf.kernel_stats` payload as aligned text
    (printed by ``--stats`` next to the guard table).

    ``stats`` is process-wide (this process, since startup).  ``merged``
    is an optional dict of this run's ``kernel.*`` tracer counters —
    the parent's delta *plus stitched worker deltas* — appended as an
    extra line so a ``--parallel --stats`` run shows the kernel
    activity that actually happened inside the pool, which the
    parent-process counters alone cannot see.
    """
    lookups = stats["cache.hits"] + stats["cache.misses"]
    rate = (100.0 * stats["cache.hits"] / lookups) if lookups else 0.0
    lines = [
        "kernel cache:%s "
        "hits %d, misses %d, hit rate %.1f%%, "
        "entries %d/%d, evictions %d"
        % (
            "" if stats["cache.enabled"] else " (disabled)",
            stats["cache.hits"],
            stats["cache.misses"],
            rate,
            stats["cache.entries"],
            stats["cache.capacity"],
            stats["cache.evictions"],
        ),
        "  interning:%s reused %d, interned %d, live %d"
        % (
            "" if stats["intern.enabled"] else " (disabled)",
            stats["intern.reused"],
            stats["intern.interned"],
            stats["intern.live"],
        ),
    ]
    if merged is not None:
        hits = merged.get("kernel.cache.hits", 0)
        misses = merged.get("kernel.cache.misses", 0)
        run_lookups = hits + misses
        run_rate = (100.0 * hits / run_lookups) if run_lookups else 0.0
        lines.append(
            "  this run (incl. workers): hits %d, misses %d, "
            "hit rate %.1f%%, interned reused %d"
            % (hits, misses, run_rate, merged.get("kernel.intern.reused", 0))
        )
    return "\n".join(lines)
