"""Trace diffing: attribute a latency delta to named operators.

``repro bench-watch`` can tell you *that* a run regressed;
:func:`diff_traces` tells you *where*.  It compares two
``repro.trace/1`` documents of the same (or comparable) workload by
joining their per-span-name aggregates — calls, total seconds, *self*
seconds (the exclusive time that actually locates a bottleneck; a
parent that merely awaits children diffs near zero) — and emits a
``repro.trace-diff/1`` document whose rows are sorted by absolute
self-time delta, so the operator responsible for the regression is the
first line of the report.

Phase rows (the leading dotted component of the span name) ride along
for the coarse view, and counter deltas for the ``kernel.*`` /
``parallel.*`` metrics both traces snapshot explain *why* an operator
moved (cache hit-rate collapse, shard retries, ...).

The document shape follows the repo's export conventions
(:mod:`repro.obs.export`): a ``schema`` stamp, plain JSON-safe values,
a ``validate_trace_diff`` structural checker that raises
:class:`~repro.errors.EncodingError`, and a writer/loader pair.
:func:`render_trace_diff` is the aligned-text table the ``repro trace
diff`` CLI prints and bench-watch appends to a regression report.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.errors import EncodingError
from repro.obs.analyze import operator_hotspots, phase_totals

__all__ = [
    "TRACE_DIFF_SCHEMA",
    "diff_traces",
    "validate_trace_diff",
    "write_trace_diff",
    "load_trace_diff",
    "render_trace_diff",
]

#: schema identifier stamped on every trace-diff document
TRACE_DIFF_SCHEMA = "repro.trace-diff/1"


def _total_seconds(document: dict) -> float:
    return sum(
        s["end"] - s["start"]
        for s in document.get("spans", ())
        if s.get("end") is not None and s.get("parent") is None
    )


def _join_rows(
    before: List[dict], after: List[dict], key: str
) -> List[dict]:
    """Full outer join of aggregate rows on ``key``; absent sides read
    as zero so appearing/disappearing operators diff cleanly."""
    names = {row[key] for row in before} | {row[key] for row in after}
    b_index = {row[key]: row for row in before}
    a_index = {row[key]: row for row in after}
    empty = {"calls": 0, "spans": 0, "seconds": 0.0, "self_seconds": 0.0}
    rows = []
    for name in names:
        b = b_index.get(name, empty)
        a = a_index.get(name, empty)
        rows.append(
            {
                key: name,
                "before_calls": b.get("calls", b.get("spans", 0)),
                "after_calls": a.get("calls", a.get("spans", 0)),
                "before_seconds": b.get("seconds", b["self_seconds"]),
                "after_seconds": a.get("seconds", a["self_seconds"]),
                "before_self_seconds": b["self_seconds"],
                "after_self_seconds": a["self_seconds"],
                "delta_self_seconds": a["self_seconds"] - b["self_seconds"],
            }
        )
    rows.sort(key=lambda r: (-abs(r["delta_self_seconds"]), r[key]))
    return rows


def _counter_deltas(before: dict, after: dict) -> Dict[str, int]:
    b = (before.get("metrics") or {}).get("counters") or {}
    a = (after.get("metrics") or {}).get("counters") or {}
    deltas = {}
    for name in set(b) | set(a):
        delta = a.get(name, 0) - b.get(name, 0)
        if delta:
            deltas[name] = delta
    return dict(sorted(deltas.items()))


def diff_traces(
    before: dict,
    after: dict,
    *,
    label_before: str = "before",
    label_after: str = "after",
) -> dict:
    """Diff two ``repro.trace/1`` documents into a
    ``repro.trace-diff/1`` document.

    Keys: ``schema``; ``labels``; ``total`` (before/after/delta wall
    seconds over root spans); ``operators`` — one row per span name in
    either trace, with before/after calls, total seconds, self
    seconds, and ``delta_self_seconds``, sorted by absolute self-time
    delta (the attribution the acceptance criteria ask for);
    ``phases`` — the same join at phase granularity; ``counters`` —
    nonzero metric counter deltas.
    """
    total_before = _total_seconds(before)
    total_after = _total_seconds(after)
    return {
        "schema": TRACE_DIFF_SCHEMA,
        "labels": {"before": label_before, "after": label_after},
        "total": {
            "before_seconds": total_before,
            "after_seconds": total_after,
            "delta_seconds": total_after - total_before,
        },
        "operators": _join_rows(
            operator_hotspots(before), operator_hotspots(after), "name"
        ),
        "phases": _join_rows(
            phase_totals(before), phase_totals(after), "phase"
        ),
        "counters": _counter_deltas(before, after),
    }


def _fail(reason: str) -> None:
    raise EncodingError(f"invalid trace-diff document: {reason}")


def validate_trace_diff(document: dict) -> dict:
    """Structurally validate a trace-diff document; returns it."""
    if not isinstance(document, dict):
        _fail("not an object")
    if document.get("schema") != TRACE_DIFF_SCHEMA:
        _fail(f"bad schema {document.get('schema')!r}")
    total = document.get("total")
    if not isinstance(total, dict):
        _fail("missing total")
    for key in ("before_seconds", "after_seconds", "delta_seconds"):
        if not isinstance(total.get(key), (int, float)):
            _fail(f"total.{key} is {total.get(key)!r}")
    for section, key in (("operators", "name"), ("phases", "phase")):
        rows = document.get(section)
        if not isinstance(rows, list):
            _fail(f"missing {section}")
        for i, row in enumerate(rows):
            if not isinstance(row, dict) or not isinstance(
                row.get(key), str
            ):
                _fail(f"{section}[{i}] has no {key}")
            for field in (
                "before_self_seconds",
                "after_self_seconds",
                "delta_self_seconds",
            ):
                if not isinstance(row.get(field), (int, float)):
                    _fail(f"{section}[{i}].{field} is {row.get(field)!r}")
    counters = document.get("counters")
    if not isinstance(counters, dict):
        _fail("missing counters")
    return document


def write_trace_diff(path: str, document: dict) -> str:
    """Validate and write a trace-diff document to ``path``."""
    payload = json.dumps(
        validate_trace_diff(document), indent=2, sort_keys=True
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.write("\n")
    return path


def load_trace_diff(path: str) -> dict:
    """Read and validate a trace-diff document from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return validate_trace_diff(json.load(handle))


def _fmt(seconds: float) -> str:
    if abs(seconds) >= 1.0:
        return f"{seconds:+9.3f} s "
    if abs(seconds) >= 0.001:
        return f"{seconds * 1000:+9.3f} ms"
    return f"{seconds * 1e6:+9.1f} µs"


def _fmt_abs(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s "
    if seconds >= 0.001:
        return f"{seconds * 1000:8.3f} ms"
    return f"{seconds * 1e6:8.1f} µs"


def render_trace_diff(
    document: dict, *, max_rows: int = 15, max_counters: int = 12
) -> str:
    """The trace-diff as an aligned-text table, biggest mover first."""
    labels = document.get("labels") or {}
    total = document["total"]
    delta = total["delta_seconds"]
    pct = (
        100.0 * delta / total["before_seconds"]
        if total["before_seconds"]
        else 0.0
    )
    lines = [
        f"trace diff: {labels.get('before', 'before')} → "
        f"{labels.get('after', 'after')}",
        f"  total {_fmt_abs(total['before_seconds'])} → "
        f"{_fmt_abs(total['after_seconds'])}  ({_fmt(delta).strip()}, "
        f"{pct:+.1f}%)",
    ]
    rows = [
        r for r in document["operators"] if r["delta_self_seconds"] != 0.0
    ]
    if rows:
        lines.append("")
        lines.append("operators by self-time delta:")
        width = max(len(r["name"]) for r in rows[:max_rows])
        width = max(width, len("span"))
        lines.append(
            f"  {'span'.ljust(width)} {'calls':>11} {'self before':>12} "
            f"{'self after':>12} {'delta':>12}"
        )
        for row in rows[:max_rows]:
            calls = f"{row['before_calls']}→{row['after_calls']}"
            lines.append(
                f"  {row['name'].ljust(width)} {calls:>11} "
                f"{_fmt_abs(row['before_self_seconds'])} "
                f"{_fmt_abs(row['after_self_seconds'])} "
                f"{_fmt(row['delta_self_seconds'])}"
            )
        if len(rows) > max_rows:
            lines.append(f"  … {len(rows) - max_rows} more operator(s)")
    phases = [
        r for r in document["phases"] if r["delta_self_seconds"] != 0.0
    ]
    if phases:
        lines.append("")
        lines.append("phases:")
        width = max(len(r["phase"]) for r in phases)
        for row in phases:
            lines.append(
                f"  {row['phase'].ljust(width)} "
                f"{_fmt_abs(row['before_self_seconds'])} → "
                f"{_fmt_abs(row['after_self_seconds'])}  "
                f"({_fmt(row['delta_self_seconds']).strip()})"
            )
    counters = document.get("counters") or {}
    if counters:
        lines.append("")
        lines.append("counter deltas:")
        shown = list(counters.items())[:max_counters]
        width = max(len(name) for name, _ in shown)
        for name, value in shown:
            lines.append(f"  {name.ljust(width)} {value:+d}")
        if len(counters) > max_counters:
            lines.append(f"  … {len(counters) - max_counters} more counter(s)")
    return "\n".join(lines)
