"""EXPLAIN-style cost trees built from a trace.

Turns one :class:`~repro.obs.trace.Tracer` into the per-phase cost
report the ``explain`` CLI subcommand prints:

* the **span tree** — engine runs and their fixpoint rounds, with
  wall-clock per node and round attributes (delta sizes) inline;
  repeated same-name leaf spans under one parent are folded into a
  single ``×N`` line so a 40-round trace stays readable;
* the **relation-algebra table** — per-operator call counts, input and
  output representation sizes, and total seconds, from the metrics
  histograms the algebra records;
* the **QE / fixpoint summary lines** — eliminations performed, rounds
  per engine, per-round delta sizes from the round events;
* the **cost-ledger table** — estimated-vs-actual cardinalities and
  kernel-cache hit rates per operator, when the tracer's
  :class:`~repro.obs.ledger.CostLedger` recorded any calls (also
  available standalone via the ``repro profile`` subcommand).

:func:`phase_breakdown` returns the same content as a plain dict —
the machine-readable form ``benchmarks/collect_results.py`` folds into
``BENCH_PROFILES.json`` so benchmark entries carry per-phase
breakdowns, not just wall-clock.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.metrics import Metrics
from repro.obs.trace import SpanRecord, Tracer

__all__ = ["phase_breakdown", "render_profile", "render_metrics_summary"]

#: the relation-algebra operators whose in/out sizes the algebra records
OPERATORS = ("join", "complement", "project")


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s "
    if seconds >= 0.001:
        return f"{seconds * 1000:8.3f} ms"
    return f"{seconds * 1e6:8.1f} µs"


def _span_label(record: SpanRecord) -> str:
    attrs = {k: v for k, v in record.attrs.items() if k != "error"}
    label = record.name
    if "round" in attrs:
        label += f" #{attrs.pop('round')}"
    if attrs:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        label += f" [{inner}]"
    if "error" in record.attrs:
        label += f" !{record.attrs['error']}"
    return label


def _children_index(tracer: Tracer) -> Dict[Optional[int], List[SpanRecord]]:
    index: Dict[Optional[int], List[SpanRecord]] = {}
    for record in tracer.spans:
        index.setdefault(record.parent_id, []).append(record)
    return index


def _render_span(
    record: SpanRecord,
    index: Dict[Optional[int], List[SpanRecord]],
    lines: List[str],
    prefix: str,
    is_last: bool,
) -> None:
    branch = "└─ " if is_last else "├─ "
    lines.append(
        f"{prefix}{branch}{_span_label(record):<46} {_format_seconds(record.duration)}"
    )
    child_prefix = prefix + ("   " if is_last else "│  ")
    children = index.get(record.span_id, [])
    # fold runs of same-name childless leaves (e.g. per-rule fo.evaluate)
    rendered: List[SpanRecord] = []
    folded: Dict[str, List[SpanRecord]] = {}
    for child in children:
        if index.get(child.span_id) or "round" in child.attrs:
            rendered.append(child)
        else:
            folded.setdefault(child.name, []).append(child)
    for name, group in folded.items():
        if len(group) == 1:
            rendered.append(group[0])
        else:
            rendered.append(_fold(name, group))
    rendered.sort(key=lambda s: s.start)
    for i, child in enumerate(rendered):
        _render_span(child, index, lines, child_prefix, i == len(rendered) - 1)


def _fold(name: str, group: List[SpanRecord]) -> SpanRecord:
    total = sum(s.duration for s in group)
    record = SpanRecord(-1, None, f"{name} ×{len(group)}", group[0].start, {})
    record.end = group[0].start + total
    return record


def _operator_rows(metrics: Metrics) -> List[dict]:
    rows = []
    for op in OPERATORS:
        calls = metrics.counter(f"relation.{op}.calls")
        if not calls:
            continue
        tin = metrics.histogram(f"relation.{op}.in_tuples")
        tout = metrics.histogram(f"relation.{op}.out_tuples")
        secs = metrics.histogram(f"relation.{op}.seconds")
        rows.append(
            {
                "operator": op,
                "calls": calls,
                "in_tuples": int(tin.total) if tin else 0,
                "out_tuples": int(tout.total) if tout else 0,
                "max_out_tuples": int(tout.max) if tout and tout.max else 0,
                "seconds": secs.total if secs else 0.0,
            }
        )
    return rows


def _round_deltas(tracer: Tracer) -> Dict[str, List[int]]:
    """Per-engine per-round delta sizes, from the round spans in order."""
    out: Dict[str, List[int]] = {}
    for record in tracer.spans:
        if record.name.endswith(".round") and "delta_tuples" in record.attrs:
            engine = record.name[: -len(".round")]
            out.setdefault(engine, []).append(int(record.attrs["delta_tuples"]))
    return out


def phase_breakdown(tracer: Tracer) -> dict:
    """The per-phase costs as a plain dict (machine-readable profile).

    Keys: ``total_seconds``, ``operators`` (per-operator calls/sizes/
    seconds), ``qe`` (calls + variables eliminated), ``fixpoint``
    (per-engine rounds + delta sizes), ``counters`` (everything else).
    """
    metrics = tracer.metrics
    rounds = {
        name[: -len(".rounds")]: value
        for name, value in metrics.counters.items()
        if name.endswith(".rounds") and not name.startswith("guard.")
    }
    return {
        "total_seconds": tracer.total_seconds(),
        "operators": _operator_rows(metrics),
        "qe": {
            "calls": metrics.counter("qe.calls"),
            "eliminated_vars": metrics.counter("qe.eliminated_vars"),
        },
        "fixpoint": {
            "rounds": rounds,
            "deltas": _round_deltas(tracer),
        },
        "counters": dict(sorted(metrics.counters.items())),
    }


def _memory_rows(tracer: Tracer) -> List[dict]:
    """Per-span-name memory aggregates when the run traced with
    ``--memory`` (empty otherwise); delegates to
    :func:`repro.obs.memory.memory_summary` over the span attrs."""
    from repro.obs.memory import memory_summary

    return memory_summary(
        {
            "spans": [
                {"name": s.name, "attrs": s.attrs}
                for s in tracer.spans
            ]
        }
    )


def render_profile(tracer: Tracer, guard=None) -> str:
    """The full EXPLAIN-style report: span tree + per-phase tables."""
    lines: List[str] = []
    roots = tracer.root_spans()
    total = sum(s.duration for s in roots)
    lines.append(f"evaluation profile  (total {_format_seconds(total).strip()})")
    index = _children_index(tracer)
    for i, root in enumerate(roots):
        _render_span(root, index, lines, "", i == len(roots) - 1)
    if tracer.dropped_spans:
        lines.append(f"  … {tracer.dropped_spans} span(s) dropped (max_spans cap)")

    metrics = tracer.metrics
    rows = _operator_rows(metrics)
    if rows:
        lines.append("")
        lines.append("relation algebra")
        lines.append(
            f"  {'operator':<12} {'calls':>6} {'tuples in':>10} "
            f"{'tuples out':>10} {'max out':>8} {'seconds':>10}"
        )
        for row in rows:
            lines.append(
                f"  {row['operator']:<12} {row['calls']:>6} {row['in_tuples']:>10} "
                f"{row['out_tuples']:>10} {row['max_out_tuples']:>8} "
                f"{row['seconds']:>10.4f}"
            )
    qe_calls = metrics.counter("qe.calls")
    eliminated = metrics.counter("qe.eliminated_vars")
    if qe_calls or eliminated:
        lines.append("")
        lines.append(
            f"quantifier elimination: {qe_calls} call(s), "
            f"{eliminated} variable(s) eliminated"
        )
    deltas = _round_deltas(tracer)
    round_counters = {
        name[: -len(".rounds")]: value
        for name, value in metrics.counters.items()
        if name.endswith(".rounds") and not name.startswith("guard.")
    }
    if round_counters:
        lines.append("")
        lines.append("fixpoint")
        for engine in sorted(round_counters):
            sizes = deltas.get(engine)
            suffix = f", delta sizes {sizes}" if sizes else ""
            lines.append(f"  {engine}: {round_counters[engine]} round(s){suffix}")
    quantile_rows = [
        (name, metrics.histograms[name])
        for name in sorted(metrics.histograms)
        if name.endswith(".seconds") and metrics.histograms[name].count
    ]
    if quantile_rows:
        lines.append("")
        lines.append("latency quantiles")
        width = max(len(name) for name, _ in quantile_rows)
        for name, h in quantile_rows:
            lines.append(
                f"  {name.ljust(width)}  p50={h.quantile(0.5):.6f} "
                f"p95={h.quantile(0.95):.6f} p99={h.quantile(0.99):.6f} "
                f"(n={h.count})"
            )
    memory_rows = _memory_rows(tracer)
    if memory_rows:
        lines.append("")
        lines.append("memory attribution")
        width = max(len(r["name"]) for r in memory_rows)
        width = max(width, len("span"))
        lines.append(
            f"  {'span'.ljust(width)} {'calls':>6} {'alloc blocks':>13} "
            f"{'alloc bytes':>12} {'peak bytes':>11}"
        )
        for row in memory_rows:
            alloc_bytes = (
                f"{row['alloc_bytes']:>12}" if row["alloc_bytes"]
                else f"{'—':>12}"
            )
            lines.append(
                f"  {row['name'].ljust(width)} {row['calls']:>6} "
                f"{row['alloc_blocks']:>13} {alloc_bytes} "
                f"{row['peak_bytes']:>11}"
            )
    hits = metrics.counter("kernel.cache.hits")
    misses = metrics.counter("kernel.cache.misses")
    if hits or misses:
        rate = 100.0 * hits / (hits + misses)
        reused = metrics.counter("kernel.intern.reused")
        lines.append("")
        lines.append(
            f"kernel cache: {hits} hit(s), {misses} miss(es) "
            f"({rate:.1f}% hit rate), {reused} interned tuple reuse(s)"
        )
    if not tracer.ledger.is_empty():
        from repro.obs.ledger import render_cost_ledger

        lines.append("")
        lines.append(render_cost_ledger(tracer.ledger))
    if guard is not None:
        from repro.obs.export import guard_stats_table

        lines.append("")
        lines.append(guard_stats_table(guard.stats()))
    return "\n".join(lines)


def render_metrics_summary(metrics: Metrics) -> str:
    """A compact one-counter-per-line summary (the ``-v`` CLI surface)."""
    if metrics.is_empty():
        return "metrics: (none recorded)"
    lines = ["metrics:"]
    width = max(len(name) for name in metrics.counters) if metrics.counters else 0
    for name in sorted(metrics.counters):
        lines.append(f"  {name.ljust(width)}  {metrics.counters[name]}")
    for name in sorted(metrics.histograms):
        h = metrics.histograms[name]
        lines.append(
            f"  {name}: n={h.count} total={h.total:g} mean={h.mean:g} "
            f"min={h.min:g} max={h.max:g}"
        )
        if h.count:
            lines.append(
                f"  {name}: p50={h.quantile(0.5):g} "
                f"p95={h.quantile(0.95):g} p99={h.quantile(0.99):g}"
            )
    return "\n".join(lines)
