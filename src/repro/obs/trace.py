"""Span tracing with ContextVar-ambient collection.

A :class:`Tracer` collects *spans* (named, nested, monotonic-clock
timed intervals), *events* (instant annotations, e.g. one fixpoint
round's delta size), and a :class:`~repro.obs.metrics.Metrics`
registry — one object per observed evaluation.

The engines reach the tracer the same way they reach an
:class:`~repro.runtime.guard.EvaluationGuard`: through a
:mod:`contextvars` slot, so algebra and engine signatures stay
unchanged.  ``with tracer:`` *activates* it; the instrumented hot
paths call :func:`active_tracer` / :func:`span` and do nothing when no
tracer is active.  The no-observer cost of an instrumented operation
is a single context-variable read — benchmarked by E14
(``benchmarks/bench_e14_trace_overhead.py``) next to E13's guard gate.

Guard integration: when an :class:`EvaluationGuard` deactivates inside
an active tracer, its per-site counters are merged into the tracer's
metrics under the ``guard.`` prefix (see ``EvaluationGuard.__exit__``),
so budget checkpoints and trace metrics share one collection surface.
Kernel-cache integration works the same way: the outermost activation
snapshots the process-wide counters from :mod:`repro.perf` and the
outermost exit merges their growth under the ``kernel.`` prefix.

Usage::

    tracer = Tracer()
    with tracer:
        result = evaluate(formula, db)
    print(tracer.metrics.counter("relation.join.calls"))
    for record in tracer.spans:
        print(record.name, record.duration)

Inside instrumented code::

    with span("qe.eliminate", vars=k):
        ...                      # no-op when no tracer is active
"""

from __future__ import annotations

import time
import uuid
from contextvars import ContextVar
from typing import Any, Callable, Dict, List, Optional

from repro.obs.flightrec import record as _flight_record
from repro.obs.ledger import CostLedger
from repro.obs.metrics import Metrics
from repro.obs.sink import Sink, level_number
from repro.perf.cache import kernel_counters

__all__ = [
    "LOG_SCHEMA",
    "SpanRecord",
    "Tracer",
    "active_tracer",
    "span",
    "event",
]

#: schema identifier stamped on every structured log record the tracer
#: emits (the canonical definition; :mod:`repro.obs.log` re-exports it)
LOG_SCHEMA = "repro.log/1"

_ACTIVE: ContextVar[Optional["Tracer"]] = ContextVar(
    "repro_active_tracer", default=None
)


def active_tracer() -> Optional["Tracer"]:
    """The innermost tracer activated on this context, or ``None``."""
    return _ACTIVE.get()


class SpanRecord:
    """One named, timed interval.  ``start``/``end`` are seconds on the
    tracer's monotonic clock, relative to the tracer's epoch; ``end`` is
    ``None`` while the span is open.  ``attrs`` may be extended until
    the span closes (engines attach delta sizes computed mid-round)."""

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "attrs")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
        attrs: Dict[str, Any],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def __repr__(self) -> str:
        state = f"{self.duration * 1000:.3f}ms" if self.end is not None else "open"
        return f"<span {self.name!r} #{self.span_id} {state}>"


class _SpanContext:
    """Context manager closing one span (returned by :meth:`Tracer.span`)."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record

    def __enter__(self) -> SpanRecord:
        return self.record

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.record.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close(self.record)


class _NullSpan:
    """The disabled-path span: enters to ``None``, exits silently."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans, events, metrics, and the per-operator cost
    ledger (:class:`~repro.obs.ledger.CostLedger`, on :attr:`ledger`)
    for one observed evaluation.

    ``clock`` is injectable (default ``time.perf_counter``) so tests
    can drive timings deterministically.  ``max_spans`` bounds memory:
    past it, new spans are counted (``dropped_spans``) but not stored —
    tracing must never be the thing that blows the evaluation up.
    """

    __slots__ = (
        "clock",
        "epoch",
        "metrics",
        "ledger",
        "spans",
        "events",
        "max_spans",
        "dropped_spans",
        "trace_id",
        "sinks",
        "memory",
        "_stack",
        "_next_id",
        "_tokens",
        "_kernel_baseline",
        "_mem_frames",
    )

    def __init__(
        self,
        *,
        clock: Callable[[], float] = time.perf_counter,
        max_spans: int = 100_000,
        trace_id: Optional[str] = None,
    ) -> None:
        self.clock = clock
        self.epoch = clock()
        self.metrics = Metrics()
        self.ledger = CostLedger()
        self.spans: List[SpanRecord] = []
        self.events: List[dict] = []
        self.max_spans = max_spans
        self.dropped_spans = 0
        self.trace_id = trace_id if trace_id is not None else uuid.uuid4().hex[:12]
        self.sinks: List[Sink] = []
        self.memory = None  # a MemoryProfiler when --memory is on
        self._stack: List[SpanRecord] = []
        self._next_id = 0
        self._tokens: list = []
        self._kernel_baseline: Optional[Dict[str, int]] = None
        self._mem_frames: Dict[int, list] = {}

    # ------------------------------------------------------------ activation

    def __enter__(self) -> "Tracer":
        if not self._tokens:
            # snapshot the process-wide kernel-cache counters so the
            # outermost exit can attribute their growth to this tracer
            self._kernel_baseline = kernel_counters()
            if self.memory is not None:
                self.memory.start()
        self._tokens.append(_ACTIVE.set(self))
        return self

    def __exit__(self, *exc_info) -> None:
        outermost = len(self._tokens) == 1
        _ACTIVE.reset(self._tokens.pop())
        if outermost and self._kernel_baseline is not None:
            baseline, self._kernel_baseline = self._kernel_baseline, None
            for name, value in kernel_counters().items():
                grew = value - baseline.get(name, 0)
                if grew:
                    self.metrics.count(f"kernel.{name}", grew)
        if outermost:
            if self.memory is not None:
                self.memory.stop()
                self._mem_frames.clear()
            for sink in self.sinks:
                sink.flush()

    # -------------------------------------------------------------- recording

    def now(self) -> float:
        """Seconds since the tracer's epoch (monotonic)."""
        return self.clock() - self.epoch

    def span(self, name: str, **attrs: Any) -> "_SpanContext | _NullSpan":
        """Open a span; close it by exiting the returned context manager."""
        if len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return _NULL_SPAN
        parent = self._stack[-1].span_id if self._stack else None
        self._next_id += 1
        record = SpanRecord(self._next_id, parent, name, self.now(), attrs)
        self.spans.append(record)
        self._stack.append(record)
        if self.memory is not None:
            self._mem_frames[record.span_id] = self.memory.push()
        return _SpanContext(self, record)

    def _close(self, record: SpanRecord) -> None:
        if self.memory is not None:
            frame = self._mem_frames.pop(record.span_id, None)
            if frame is not None:
                record.attrs.update(self.memory.pop(frame))
        record.end = self.now()
        # pop to (and including) the record; tolerates a missed close below it
        while self._stack:
            top = self._stack.pop()
            if top is record:
                break
        attrs = dict(record.attrs)
        attrs["duration"] = record.duration
        self._emit("span", "debug", record.name, record.span_id, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record one instant event under the currently open span."""
        if len(self.events) >= self.max_spans:
            self.dropped_spans += 1
            return
        parent = self._stack[-1].span_id if self._stack else None
        self.events.append(
            {"name": name, "time": self.now(), "parent": parent, "attrs": attrs}
        )
        self._emit("event", "debug", name, parent, attrs)

    # --------------------------------------------------------- structured log

    def add_sink(self, sink: Sink) -> Sink:
        """Attach a :class:`~repro.obs.sink.Sink`; returns it (chains)."""
        self.sinks.append(sink)
        return sink

    def log(self, name: str, level: str = "info", **attrs: Any) -> None:
        """Emit one structured log record (``repro.log/1``) to the
        attached sinks and the flight-recorder ring, correlated with
        this tracer's id and the innermost open span."""
        parent = self._stack[-1].span_id if self._stack else None
        self._emit("log", level, name, parent, attrs)

    def _emit(
        self,
        kind: str,
        level: str,
        name: str,
        span_id: Optional[int],
        attrs: Dict[str, Any],
    ) -> None:
        record = {
            "schema": LOG_SCHEMA,
            "ts": self.now(),
            "level": level,
            "kind": kind,
            "name": name,
            "trace": self.trace_id,
            "span": span_id,
            "attrs": attrs,
        }
        _flight_record(record)
        if self.sinks:
            severity = level_number(level)
            for sink in self.sinks:
                if severity >= level_number(sink.min_level):
                    sink.emit(record)

    # ------------------------------------------------------------- inspection

    def root_spans(self) -> List[SpanRecord]:
        return [s for s in self.spans if s.parent_id is None]

    def children(self, record: SpanRecord) -> List[SpanRecord]:
        return [s for s in self.spans if s.parent_id == record.span_id]

    def total_seconds(self) -> float:
        """Wall time covered by the root spans (sum of their durations)."""
        return sum(s.duration for s in self.root_spans())

    def __repr__(self) -> str:
        return (
            f"<Tracer {len(self.spans)} span(s), {len(self.events)} event(s), "
            f"{len(self.metrics.counters)} counter(s)>"
        )


# ------------------------------------------------------- ambient conveniences


def span(name: str, **attrs: Any):
    """An ambient span: no-op context manager when no tracer is active."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    """An ambient instant event (dropped when no tracer is active)."""
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.event(name, **attrs)
