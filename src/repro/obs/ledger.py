"""Per-operator cost ledger: the planner's measurement substrate.

Every instrumented ``Relation`` operation (join, projection,
complement, absorption) appends one :class:`CostRecord` to the active
tracer's :class:`CostLedger` — operator, input/output cardinalities,
output atom count, kernel-cache hits/misses attributed to the call
(parent-side delta plus any stitched worker deltas), wall seconds,
and the dispatch shape (shard count, skew, serial vs parallel).  The
ledger is the exact input contract for a cost-based planner deciding
serial-vs-parallel per operator: estimated output cardinality is
recorded *next to* the actual one, so misestimation is a first-class
column, not a post-hoc join against logs.

Estimates are computed **before** the operator runs, from information
a planner would have (sizes and the partition index), so the
estimated-vs-actual table measures the estimator the planner would
actually use:

* **join** — candidate pairs under the partition index (bucket size
  plus unpinned remainder per pinned left tuple; ``|L| × |R|``
  without an index).  Every output tuple comes from one considered
  pair, so this is a sound upper bound.
* **project** — the input size (quantifier elimination is tuple-local
  and can split tuples, but one-output-per-input is the planner's
  base rate).
* **complement** — the product of per-tuple atom counts, capped: the
  DNF-negation distribution bound.
* **absorb** — the deduplicated input size (absorption only removes).

The ledger is bounded (``max_records``; excess appends are counted in
``dropped``, never stored), serialized as a schema-versioned
``repro.profile/1`` document by :func:`profile_document` /
:func:`write_profile`, and rendered as the estimated-vs-actual table
``repro profile`` prints (:func:`render_cost_ledger`, also folded
into :func:`repro.obs.profile.render_profile`).

This module must not import :mod:`repro.obs.trace` at module level
(the tracer owns a ledger; the import goes the other way).
"""

from __future__ import annotations

import json
from typing import Any, List, Optional

from repro.errors import EncodingError

__all__ = [
    "PROFILE_SCHEMA",
    "CostRecord",
    "CostLedger",
    "profile_document",
    "write_profile",
    "load_profile",
    "validate_profile",
    "render_cost_ledger",
]

#: schema identifier stamped on every exported cost-ledger document
PROFILE_SCHEMA = "repro.profile/1"

#: operators a record may carry (order fixes the rendered table order)
OPERATORS = ("join", "project", "complement", "absorb")

#: the per-record numeric fields, in export order
_NUMERIC_FIELDS = (
    "in_tuples",
    "out_tuples",
    "est_out",
    "out_atoms",
    "cache_hits",
    "cache_misses",
    "seconds",
    "shards",
    "skew",
)

#: memory-attribution fields (``--memory``); optional in validation so
#: documents written before the fields existed stay loadable
_MEMORY_FIELDS = ("alloc_blocks", "alloc_bytes", "peak_bytes")


class CostRecord:
    """One operator invocation's observed cost and cardinalities.

    ``est_out`` is the pre-execution output-cardinality estimate (see
    the module docstring for the per-operator estimators);
    ``estimator`` names which estimator produced it (e.g.
    ``"join.indexed"`` vs ``"join.cross"``), so calibration can weight
    estimators separately instead of pooling a tight index-derived
    bound with a loose cross-product one; ``shards`` is 0 and ``skew``
    1.0 for a serial call; ``cache_hits`` / ``cache_misses`` include
    stitched worker deltas for process-pool dispatches.
    """

    __slots__ = ("op", "in_tuples", "out_tuples", "est_out", "out_atoms",
                 "cache_hits", "cache_misses", "seconds", "shards", "skew",
                 "parallel", "estimator", "alloc_blocks", "alloc_bytes",
                 "peak_bytes")

    def __init__(
        self,
        op: str,
        *,
        in_tuples: int,
        out_tuples: int,
        est_out: int,
        out_atoms: int = 0,
        cache_hits: int = 0,
        cache_misses: int = 0,
        seconds: float = 0.0,
        shards: int = 0,
        skew: float = 1.0,
        parallel: bool = False,
        estimator: str = "",
        alloc_blocks: int = 0,
        alloc_bytes: int = 0,
        peak_bytes: int = 0,
    ) -> None:
        self.op = op
        self.estimator = estimator or op
        self.in_tuples = in_tuples
        self.out_tuples = out_tuples
        self.est_out = est_out
        self.out_atoms = out_atoms
        # kernel counters are monotone, but a mid-run cache reconfigure
        # resets them; clamp so a ledger row can never go negative
        self.cache_hits = max(0, cache_hits)
        self.cache_misses = max(0, cache_misses)
        self.seconds = seconds
        self.shards = shards
        self.skew = skew
        self.parallel = parallel
        # memory attribution (0 unless the run traced with --memory;
        # see repro.obs.memory for the backend semantics)
        self.alloc_blocks = max(0, alloc_blocks)
        self.alloc_bytes = max(0, alloc_bytes)
        self.peak_bytes = max(0, peak_bytes)

    @property
    def atoms_per_tuple(self) -> float:
        """Mean constraint atoms per output tuple (0.0 on empty output)."""
        return self.out_atoms / self.out_tuples if self.out_tuples else 0.0

    def as_dict(self) -> dict:
        out: dict = {"op": self.op, "estimator": self.estimator}
        for field in _NUMERIC_FIELDS:
            out[field] = getattr(self, field)
        out["parallel"] = self.parallel
        for field in _MEMORY_FIELDS:
            value = getattr(self, field)
            if value:
                out[field] = value
        return out

    def __repr__(self) -> str:
        mode = f"parallel×{self.shards}" if self.parallel else "serial"
        return (
            f"<CostRecord {self.op} {self.in_tuples}→{self.out_tuples} "
            f"(est {self.est_out}) {mode}>"
        )


class CostLedger:
    """A bounded, append-only store of :class:`CostRecord` entries.

    One ledger per observed evaluation (it hangs off the
    :class:`~repro.obs.trace.Tracer`).  Past ``max_records`` new
    appends are counted in :attr:`dropped` but not stored — profiling
    must never be the thing that blows the evaluation up.
    """

    __slots__ = ("records", "max_records", "dropped")

    def __init__(self, max_records: int = 4096) -> None:
        self.records: List[CostRecord] = []
        self.max_records = max_records
        self.dropped = 0

    def add(self, op: str, **fields: Any) -> Optional[CostRecord]:
        """Append one record (dropped silently past the bound)."""
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return None
        record = CostRecord(op, **fields)
        self.records.append(record)
        return record

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def is_empty(self) -> bool:
        return not self.records and not self.dropped

    def operator_summary(self) -> List[dict]:
        """Per-operator aggregates, in :data:`OPERATORS` order.

        Keys per row: ``operator``, ``calls``, ``in_tuples``,
        ``out_tuples``, ``est_out``, ``out_atoms``, ``cache_hits``,
        ``cache_misses``, ``seconds``, ``parallel_calls``,
        ``max_skew``, ``alloc_blocks``, ``alloc_bytes``,
        ``peak_bytes`` (summed allocation, max single-call peak; all
        zero unless the run traced with ``--memory``).
        """
        by_op: dict = {}
        for record in self.records:
            row = by_op.get(record.op)
            if row is None:
                row = by_op[record.op] = {
                    "operator": record.op, "calls": 0, "in_tuples": 0,
                    "out_tuples": 0, "est_out": 0, "out_atoms": 0,
                    "cache_hits": 0, "cache_misses": 0, "seconds": 0.0,
                    "parallel_calls": 0, "max_skew": 0.0,
                    "alloc_blocks": 0, "alloc_bytes": 0, "peak_bytes": 0,
                }
            row["calls"] += 1
            for field in ("in_tuples", "out_tuples", "est_out", "out_atoms",
                          "cache_hits", "cache_misses", "seconds",
                          "alloc_blocks", "alloc_bytes"):
                row[field] += getattr(record, field)
            row["peak_bytes"] = max(row["peak_bytes"], record.peak_bytes)
            if record.parallel:
                row["parallel_calls"] += 1
                row["max_skew"] = max(row["max_skew"], record.skew)
        known = [by_op.pop(op) for op in OPERATORS if op in by_op]
        return known + [by_op[op] for op in sorted(by_op)]


# ------------------------------------------------------- document round-trip


def profile_document(tracer, guard=None) -> dict:
    """The tracer's cost ledger (plus optional guard stats) as a plain
    JSON-safe ``repro.profile/1`` dict."""
    ledger: CostLedger = tracer.ledger
    metrics = tracer.metrics
    return {
        "schema": PROFILE_SCHEMA,
        "trace": tracer.trace_id,
        "total_seconds": tracer.total_seconds(),
        "records": [record.as_dict() for record in ledger.records],
        "dropped_records": ledger.dropped,
        "operators": ledger.operator_summary(),
        "kernel": {
            "cache.hits": metrics.counter("kernel.cache.hits"),
            "cache.misses": metrics.counter("kernel.cache.misses"),
            "intern.reused": metrics.counter("kernel.intern.reused"),
        },
        "guard": guard.stats() if guard is not None else None,
    }


def write_profile(path: str, tracer, guard=None) -> dict:
    """Serialize the ledger to ``path`` (validated first); returns the doc."""
    document = validate_profile(profile_document(tracer, guard))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def load_profile(path: str) -> dict:
    """Read and validate a ``repro.profile/1`` document from disk."""
    with open(path, encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as error:
            raise EncodingError(
                f"profile file {path!r} is not JSON: {error}"
            ) from None
    return validate_profile(document)


def _fail(message: str) -> None:
    raise EncodingError(f"invalid profile document: {message}")


def validate_profile(document: Any) -> dict:
    """Check the profile-document invariants; returns the document."""
    if not isinstance(document, dict):
        _fail("not an object")
    if document.get("schema") != PROFILE_SCHEMA:
        _fail(
            f"schema is {document.get('schema')!r}, expected {PROFILE_SCHEMA!r}"
        )
    records = document.get("records")
    operators = document.get("operators")
    if not isinstance(records, list) or not isinstance(operators, list):
        _fail("records/operators must be arrays")
    dropped = document.get("dropped_records")
    if not isinstance(dropped, int) or dropped < 0:
        _fail("dropped_records must be a non-negative integer")
    for entry in records:
        if not isinstance(entry, dict):
            _fail("record is not an object")
        if not isinstance(entry.get("op"), str):
            _fail("record op is not a string")
        # estimator is optional (documents written before the field
        # existed stay loadable); when present it must be a string
        if "estimator" in entry and not isinstance(entry["estimator"], str):
            _fail("record estimator is not a string")
        for field in _NUMERIC_FIELDS:
            value = entry.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                _fail(f"record field {field!r} is not a number")
            if value < 0:
                _fail(f"record field {field!r} is negative")
        if not isinstance(entry.get("parallel"), bool):
            _fail("record parallel flag is not a boolean")
        if entry["parallel"] and entry["shards"] < 1:
            _fail("parallel record has no shards")
        # memory fields are optional (pre---memory documents); when
        # present they must be non-negative numbers
        for field in _MEMORY_FIELDS:
            if field in entry:
                value = entry[field]
                if (
                    not isinstance(value, (int, float))
                    or isinstance(value, bool)
                    or value < 0
                ):
                    _fail(f"record field {field!r} is not a non-negative number")
    for row in operators:
        if not isinstance(row, dict) or not isinstance(row.get("operator"), str):
            _fail("operator summary row lacks an operator name")
        if not isinstance(row.get("calls"), int) or row["calls"] < 1:
            _fail(f"operator {row.get('operator')!r} has no calls")
    kernel = document.get("kernel")
    if not isinstance(kernel, dict):
        _fail("kernel section missing")
    return document


# ------------------------------------------------------------------ rendering


def render_cost_ledger(ledger: CostLedger) -> str:
    """The estimated-vs-actual cardinality table (``repro profile``).

    One row per operator: calls, summed input/output cardinalities,
    summed pre-execution estimates, the est/actual ratio (the
    planner's misestimation factor), mean atoms per output tuple,
    kernel-cache hit rate, seconds, and how many calls went parallel.
    A run traced with ``--memory`` adds a per-operator memory block;
    a ledger that hit its record cap ends with an explicit warning —
    the totals above it are truncated, and the reader must know.
    """
    if ledger.is_empty():
        return "cost ledger: (no operator calls recorded)"
    rows = ledger.operator_summary()
    lines = [
        f"cost ledger ({PROFILE_SCHEMA}): {len(ledger.records)} record(s)"
        + (f", {ledger.dropped} dropped (max_records cap)"
           if ledger.dropped else ""),
        f"  {'operator':<12} {'calls':>6} {'tuples in':>10} {'est out':>9} "
        f"{'actual out':>10} {'est/act':>8} {'atoms/t':>8} {'hit%':>6} "
        f"{'seconds':>10} {'parallel':>9}",
    ]
    for row in rows:
        ratio = (
            f"{row['est_out'] / row['out_tuples']:>8.2f}"
            if row["out_tuples"] else f"{'—':>8}"
        )
        atoms = (
            f"{row['out_atoms'] / row['out_tuples']:>8.1f}"
            if row["out_tuples"] else f"{'—':>8}"
        )
        lookups = row["cache_hits"] + row["cache_misses"]
        hit = (
            f"{100.0 * row['cache_hits'] / lookups:>5.1f}%"
            if lookups else f"{'—':>6}"
        )
        par = (
            f"{row['parallel_calls']}/{row['calls']}"
            if row["parallel_calls"] else "serial"
        )
        lines.append(
            f"  {row['operator']:<12} {row['calls']:>6} "
            f"{row['in_tuples']:>10} {row['est_out']:>9} "
            f"{row['out_tuples']:>10} {ratio} {atoms} {hit} "
            f"{row['seconds']:>10.4f} {par:>9}"
        )
    if any(
        row["alloc_blocks"] or row["alloc_bytes"] or row["peak_bytes"]
        for row in rows
    ):
        lines.append(
            f"  {'memory':<12} {'alloc blocks':>14} {'alloc bytes':>13} "
            f"{'peak bytes':>12}"
        )
        for row in rows:
            if not (
                row["alloc_blocks"] or row["alloc_bytes"] or row["peak_bytes"]
            ):
                continue
            alloc_bytes = (
                f"{row['alloc_bytes']:>13}" if row["alloc_bytes"]
                else f"{'—':>13}"
            )
            lines.append(
                f"  {row['operator']:<12} {row['alloc_blocks']:>14} "
                f"{alloc_bytes} {row['peak_bytes']:>12}"
            )
    if ledger.dropped:
        lines.append(
            f"  warning: {ledger.dropped} cost record(s) dropped at the "
            f"{ledger.max_records}-record cap; totals above are truncated"
        )
    return "\n".join(lines)
