"""Opt-in per-span memory attribution.

Giusti–Heintz–Kuijpers (PAPERS.md) observe that constraint-query cost
is dominated by intermediate-representation *size*, and the
Grohe–Schwandtner fragment bounds are ultimately space bounds — so the
trace layer should attribute memory per operator the same way it
attributes wall time.  A :class:`MemoryProfiler` hangs off the ambient
:class:`~repro.obs.trace.Tracer` (``tracer.memory``, enabled by the
``--memory`` CLI flag): every span then closes with memory attrs, and
the cost-ledger preambles in :mod:`repro.core.relation` record
per-operator allocation into the new
:class:`~repro.obs.ledger.CostRecord` memory fields.

Two backends, because exactness and overhead pull in opposite
directions (tracemalloc costs ~3× wall time on the E14 workload —
measured, not guessed — which no "< 5%" gate survives):

* ``rss`` (default) — near-free process-level measures: ``mem_peak_bytes``
  is the growth of ``ru_maxrss`` (the OS's high-water RSS mark) while
  the span was open — the right semantics for "which operator drove
  peak memory", since the mark only moves when a new process-wide peak
  is set — and ``mem_alloc_blocks`` is the net
  ``sys.getallocatedblocks()`` delta (CPython allocator blocks; a
  count, not bytes, so it is *named* as blocks).  This is the backend
  the E21 overhead gate (< 5%) holds for.

* ``tracemalloc`` — exact traced bytes: ``mem_alloc_bytes`` (net bytes
  allocated during the span) and ``mem_peak_bytes`` (traced peak above
  the span's baseline), plus ``mem_alloc_blocks``.  Costs what
  tracemalloc costs; E21 reports that honestly instead of gating it.

Peak attribution under nesting: ``ru_maxrss`` is monotone, so a
span's growth already includes its children's — no bookkeeping
needed.  Traced peak is not (``tracemalloc.reset_peak`` is global), so
the profiler keeps a frame stack: every push/pop *folds* the global
peak into all open frames before resetting it, preserving each open
span's own high-water mark.
"""

from __future__ import annotations

import sys
import tracemalloc
from resource import RUSAGE_SELF, getrusage
from typing import Dict, List, Optional

__all__ = ["BACKENDS", "DEFAULT_BACKEND", "MemoryProfiler", "memory_summary"]

#: recognized profiler backends (see module docstring)
BACKENDS = ("rss", "tracemalloc")
DEFAULT_BACKEND = "rss"

#: ``ru_maxrss`` is kilobytes on Linux, bytes on macOS
_RU_MAXRSS_UNIT = 1 if sys.platform == "darwin" else 1024


def _peak_rss_bytes() -> int:
    return getrusage(RUSAGE_SELF).ru_maxrss * _RU_MAXRSS_UNIT


class MemoryProfiler:
    """Per-span memory attribution with a pluggable backend.

    Usage is strictly bracketed: :meth:`push` at span open returns a
    frame token; :meth:`pop` with that token at span close returns the
    attr dict to merge into the span (``mem_alloc_blocks`` and
    ``mem_peak_bytes`` always; ``mem_alloc_bytes`` under the
    ``tracemalloc`` backend).  Frames nest with spans; a pop of a
    non-top frame (a span closed out of order) discards the frames
    above it rather than corrupting the stack.
    """

    __slots__ = ("backend", "_frames", "_started_tracing")

    def __init__(self, backend: str = DEFAULT_BACKEND) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown memory backend {backend!r}; expected one of "
                f"{', '.join(BACKENDS)}"
            )
        self.backend = backend
        # frame = [blocks_at_push, rss_or_traced_at_push, peak_seen]
        self._frames: List[list] = []
        self._started_tracing = False

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Arm the backend (idempotent).  Under ``tracemalloc`` this
        starts tracing unless something else already did."""
        if self.backend == "tracemalloc" and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracing = True

    def stop(self) -> None:
        """Disarm; only stops tracemalloc if :meth:`start` started it."""
        if self._started_tracing and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._started_tracing = False
        self._frames.clear()

    # ------------------------------------------------------------- recording

    def _fold_traced(self) -> int:
        """Fold the global traced peak into every open frame, reset it,
        and return the traced current (tracemalloc backend only)."""
        current, peak = tracemalloc.get_traced_memory()
        for frame in self._frames:
            if peak > frame[2]:
                frame[2] = peak
        tracemalloc.reset_peak()
        return current

    def push(self) -> list:
        """Open a frame; returns the token :meth:`pop` needs."""
        if self.backend == "tracemalloc":
            current = self._fold_traced()
            frame = [sys.getallocatedblocks(), current, current]
        else:
            # ru_maxrss is monotone: no fold needed, growth nests for free
            frame = [sys.getallocatedblocks(), _peak_rss_bytes(), 0]
        self._frames.append(frame)
        return frame

    def pop(self, frame: list) -> Dict[str, int]:
        """Close a frame; returns the span attrs it measured."""
        if self.backend == "tracemalloc":
            current = self._fold_traced()
        frames = self._frames
        # LIFO in the common case; tolerate an out-of-order close
        while frames:
            top = frames.pop()
            if top is frame:
                break
        else:
            return {}
        blocks = max(sys.getallocatedblocks() - frame[0], 0)
        if self.backend == "tracemalloc":
            return {
                "mem_alloc_blocks": blocks,
                "mem_alloc_bytes": max(current - frame[1], 0),
                "mem_peak_bytes": max(frame[2] - frame[1], 0),
            }
        return {
            "mem_alloc_blocks": blocks,
            "mem_peak_bytes": max(_peak_rss_bytes() - frame[1], 0),
        }


def memory_summary(document: dict, *, top: int = 10) -> List[dict]:
    """Per-span-name memory aggregates from a ``repro.trace/1``
    document whose spans carry memory attrs — one row per name that
    attributed anything, sorted by peak bytes then alloc blocks.

    Rows: ``name``, ``calls`` (spans carrying memory attrs),
    ``alloc_blocks``, ``alloc_bytes`` (0 unless traced with the
    ``tracemalloc`` backend), ``peak_bytes`` (max single-span peak).
    """
    rows: Dict[str, dict] = {}
    for span in document.get("spans", ()):
        attrs = span.get("attrs") or {}
        if "mem_alloc_blocks" not in attrs and "mem_peak_bytes" not in attrs:
            continue
        row = rows.get(span["name"])
        if row is None:
            row = rows[span["name"]] = {
                "name": span["name"], "calls": 0, "alloc_blocks": 0,
                "alloc_bytes": 0, "peak_bytes": 0,
            }
        row["calls"] += 1
        row["alloc_blocks"] += int(attrs.get("mem_alloc_blocks", 0))
        row["alloc_bytes"] += int(attrs.get("mem_alloc_bytes", 0))
        row["peak_bytes"] = max(
            row["peak_bytes"], int(attrs.get("mem_peak_bytes", 0))
        )
    ordered = sorted(
        rows.values(),
        key=lambda r: (-r["peak_bytes"], -r["alloc_blocks"], r["name"]),
    )
    return ordered[:top]
