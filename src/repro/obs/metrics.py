"""Metrics registry: counters and histograms for evaluation internals.

The complexity theorems this repo reproduces are claims about *cost
growth* — QE step counts, relation sizes, fixpoint rounds — so the
engines report exactly those quantities here.  A :class:`Metrics`
registry is a plain value object: the engines never talk to it
directly but through the ambient :class:`~repro.obs.trace.Tracer`
(one ``ContextVar`` read on the disabled path; see
:mod:`repro.obs.trace`).

Two instrument kinds:

* **counters** — monotone event counts (``metrics.count(name, n)``);
* **histograms** — summaries of an observed quantity
  (``metrics.observe(name, value)``): count, sum, min, max.
  Histograms keep aggregates only, never samples, so recording stays
  O(1) in space no matter how hot the path.

Metric-name conventions (all emitted by the instrumented hot paths):

======================================  =====================================
``qe.calls``                            quantifier-elimination entry points
``qe.eliminated_vars``                  variables existentially eliminated
``qe.survivors``                        tuples surviving one elimination pass
``relation.{join,complement,project}.calls``      operator invocations
``relation.{join,complement,project}.in_tuples``  input representation size
``relation.{join,complement,project}.out_tuples`` output representation size
``relation.{join,complement,project}.seconds``    per-call wall time
``relation.simplify.calls``             absorption passes
``relation.simplify.atoms_removed``     constraint atoms simplified away
``relation.simplify.tuples_absorbed``   subsumed tuples dropped
``fo.negations`` / ``fo.projections``   evaluator complement / ∃ nodes
``{engine}.rounds``                     fixpoint rounds per engine site
``{engine}.delta_tuples``               per-round newly derived tuples
``cells.signatures``                    canonical cell signatures computed
``cells.types_checked``                 complete types tested per signature
``guard.<site>``                        per-site EvaluationGuard counters,
                                        merged when a guard deactivates
``kernel.cache.{hits,misses,evictions}``  KernelCache traffic during the
                                        tracer's outermost activation
``kernel.intern.{reused,interned}``     GTuple intern-pool traffic, same
                                        window (see :mod:`repro.perf`)
``relation.join.indexed``               joins that used the partition index
``relation.join.pairs_skipped``         tuple pairs pruned by that index
``parallel.{join,project,absorb}.calls``  sharded operator dispatches
``parallel.shards`` / ``parallel.skew``   shard count / max-over-mean size
``parallel.worker_seconds``             summed in-worker kernel seconds
``parallel.merge_seconds``              parent-side merge wall time
``parallel.utilization``                worker seconds / (wall × workers)
``parallel.pool_fallbacks``             process→thread pool degradations
                                        (emitted every dispatch, 0 included)
``parallel.retries``                    shard re-dispatches after failures
``parallel.shard_deadline_exceeded``    shards past the per-shard deadline
``parallel.quarantined``                shards re-executed serially in-process
``parallel.dropped_shards``             shards abandoned (on_failure=partial)
``parallel.pool_restarts``              fresh pools after worker crashes
``parallel.stitched_shards``            worker telemetry snapshots grafted
                                        into the parent tracer
``parallel.stitched_spans``             worker spans added by stitching
``parallel.stitch_errors``              snapshots that failed to stitch
                                        (counted, never raised)
======================================  =====================================

The six resilience gauges (``pool_fallbacks`` through
``pool_restarts``) are emitted unconditionally on every sharded
dispatch — a zero means "nothing went wrong", which dashboards and the
differential oracle need as an explicit data point, not a missing key.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

__all__ = ["Histogram", "Metrics"]


class Histogram:
    """Aggregate summary of an observed quantity (no samples kept)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's aggregates into this one."""
        self.count += other.count
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is None:
                continue
            if self.min is None or bound < self.min:
                self.min = bound
            if self.max is None or bound > self.max:
                self.max = bound

    def snapshot(self) -> dict:
        """The aggregates as a plain dict (stable keys; JSON-safe)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return (
            f"<Histogram n={self.count} total={self.total:g} "
            f"min={self.min} max={self.max}>"
        )


class Metrics:
    """A registry of named counters and histograms."""

    __slots__ = ("counters", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------- recording

    def count(self, name: str, n: int = 1) -> None:
        """Bump the named counter by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named histogram."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def merge_counters(self, counters: Mapping[str, int], prefix: str = "") -> None:
        """Fold a counter mapping in (used for guard per-site counters)."""
        for name, value in counters.items():
            if value:
                self.count(prefix + name, value)

    def merge(self, other: "Metrics") -> None:
        """Fold another registry's counters and histograms into this one."""
        self.merge_counters(other.counters)
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram()
            mine.merge(histogram)

    # ------------------------------------------------------------ inspection

    def counter(self, name: str) -> int:
        """The named counter's value (0 when never bumped)."""
        return self.counters.get(name, 0)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self.histograms.get(name)

    def is_empty(self) -> bool:
        return not self.counters and not self.histograms

    def snapshot(self) -> dict:
        """All instruments as a plain nested dict (stable, JSON-safe)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: h.snapshot() for name, h in sorted(self.histograms.items())
            },
        }

    def __repr__(self) -> str:
        return (
            f"<Metrics {len(self.counters)} counter(s), "
            f"{len(self.histograms)} histogram(s)>"
        )
