"""Metrics registry: counters and histograms for evaluation internals.

The complexity theorems this repo reproduces are claims about *cost
growth* — QE step counts, relation sizes, fixpoint rounds — so the
engines report exactly those quantities here.  A :class:`Metrics`
registry is a plain value object: the engines never talk to it
directly but through the ambient :class:`~repro.obs.trace.Tracer`
(one ``ContextVar`` read on the disabled path; see
:mod:`repro.obs.trace`).

Two instrument kinds:

* **counters** — monotone event counts (``metrics.count(name, n)``);
* **histograms** — summaries of an observed quantity
  (``metrics.observe(name, value)``): count, sum, min, max, plus a
  fixed set of power-of-two buckets from which p50/p95/p99 are
  estimated.  Histograms keep aggregates and bucket counts only,
  never samples, so recording stays O(1) in space no matter how hot
  the path.

Metric-name conventions (all emitted by the instrumented hot paths):

======================================  =====================================
``qe.calls``                            quantifier-elimination entry points
``qe.eliminated_vars``                  variables existentially eliminated
``qe.survivors``                        tuples surviving one elimination pass
``relation.{join,complement,project}.calls``      operator invocations
``relation.{join,complement,project}.in_tuples``  input representation size
``relation.{join,complement,project}.out_tuples`` output representation size
``relation.{join,complement,project}.seconds``    per-call wall time
``relation.simplify.calls``             absorption passes
``relation.simplify.atoms_removed``     constraint atoms simplified away
``relation.simplify.tuples_absorbed``   subsumed tuples dropped
``fo.negations`` / ``fo.projections``   evaluator complement / ∃ nodes
``{engine}.rounds``                     fixpoint rounds per engine site
``{engine}.delta_tuples``               per-round newly derived tuples
``cells.signatures``                    canonical cell signatures computed
``cells.types_checked``                 complete types tested per signature
``guard.<site>``                        per-site EvaluationGuard counters,
                                        merged when a guard deactivates
``kernel.cache.{hits,misses,evictions}``  KernelCache traffic during the
                                        tracer's outermost activation
``kernel.intern.{reused,interned}``     GTuple intern-pool traffic, same
                                        window (see :mod:`repro.perf`)
``relation.join.indexed``               joins that used the partition index
``relation.join.pairs_skipped``         tuple pairs pruned by that index
``parallel.{join,project,absorb}.calls``  sharded operator dispatches
``parallel.shards`` / ``parallel.skew``   shard count / max-over-mean size
``parallel.worker_seconds``             summed in-worker kernel seconds
``parallel.merge_seconds``              parent-side merge wall time
``parallel.utilization``                worker seconds / (wall × workers)
``parallel.pool_fallbacks``             process→thread pool degradations
                                        (emitted every dispatch, 0 included)
``parallel.retries``                    shard re-dispatches after failures
``parallel.shard_deadline_exceeded``    shards past the per-shard deadline
``parallel.quarantined``                shards re-executed serially in-process
``parallel.dropped_shards``             shards abandoned (on_failure=partial)
``parallel.pool_restarts``              fresh pools after worker crashes
``parallel.stitched_shards``            worker telemetry snapshots grafted
                                        into the parent tracer
``parallel.stitched_spans``             worker spans added by stitching
``parallel.stitch_errors``              snapshots that failed to stitch
                                        (counted, never raised)
======================================  =====================================

The six resilience gauges (``pool_fallbacks`` through
``pool_restarts``) are emitted unconditionally on every sharded
dispatch — a zero means "nothing went wrong", which dashboards and the
differential oracle need as an explicit data point, not a missing key.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

__all__ = ["Histogram", "Metrics", "QUANTILES", "histogram_from_snapshot"]

#: the quantiles every surface reports for a histogram, in order
QUANTILES = (0.5, 0.95, 0.99)

#: bucket ``i`` covers values in ``[2**(i - _BUCKET_OFFSET),
#: 2**(i + 1 - _BUCKET_OFFSET))``; the offset puts 2**-40 (~1e-12, well
#: below a clock tick) in bucket 0 and 2**55 (~3.6e16 — bytes, tuples,
#: seconds all fit) in the last bucket
_BUCKET_OFFSET = 40
_BUCKET_COUNT = 96


def _bucket_index(value: float) -> int:
    if value <= 0.0:
        return 0
    index = int(math.log2(value)) + _BUCKET_OFFSET
    # int() truncates toward zero: values below 1.0 need the floor
    if value < 1.0 and 2.0 ** (index - _BUCKET_OFFSET) > value:
        index -= 1
    if index < 0:
        return 0
    if index >= _BUCKET_COUNT:
        return _BUCKET_COUNT - 1
    return index


class Histogram:
    """Aggregate summary of an observed quantity (no samples kept).

    Alongside count/total/min/max, observations land in sparse
    power-of-two buckets (``buckets[i]`` counts values in
    ``[2**(i-40), 2**(i-39))``), from which :meth:`quantile` estimates
    p50/p95/p99 by geometric interpolation — good to a factor of
    ``sqrt(2)``, which is what a latency summary needs, at O(1) space.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = _bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """The estimated ``q``-quantile (``None`` on an empty histogram).

        Walks the buckets to the one holding the ``q``-th observation
        and returns its geometric midpoint, clamped into
        ``[min, max]`` so a single-bucket histogram reports exact
        bounds rather than a bucket artifact.
        """
        if not self.count:
            return None
        rank = q * self.count
        seen = 0
        estimate = self.max if self.max is not None else 0.0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                low = 2.0 ** (index - _BUCKET_OFFSET)
                estimate = low * math.sqrt(2.0)
                break
        if self.min is not None and estimate < self.min:
            estimate = self.min
        if self.max is not None and estimate > self.max:
            estimate = self.max
        return estimate

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's aggregates into this one."""
        self.count += other.count
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is None:
                continue
            if self.min is None or bound < self.min:
                self.min = bound
            if self.max is None or bound > self.max:
                self.max = bound
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n

    def snapshot(self) -> dict:
        """The aggregates as a plain dict (stable keys; JSON-safe).

        Buckets are exported with string keys (JSON objects cannot key
        on integers); :func:`histogram_from_snapshot` reverses the
        round-trip.  Quantile estimates ride along so exported trace
        documents carry p50/p95/p99 without the reader reimplementing
        the bucket walk.
        """
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {str(i): n for i, n in sorted(self.buckets.items())},
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:
        return (
            f"<Histogram n={self.count} total={self.total:g} "
            f"min={self.min} max={self.max}>"
        )


def histogram_from_snapshot(aggregate: Mapping) -> "Histogram":
    """Rebuild a :class:`Histogram` from a :meth:`Histogram.snapshot`
    dict (tolerates pre-bucket documents: buckets default empty, so
    quantiles degrade to the min/max clamp)."""
    histogram = Histogram()
    histogram.count = int(aggregate.get("count", 0))
    histogram.total = float(aggregate.get("total", 0.0))
    histogram.min = aggregate.get("min")
    histogram.max = aggregate.get("max")
    for key, n in (aggregate.get("buckets") or {}).items():
        histogram.buckets[int(key)] = int(n)
    return histogram


class Metrics:
    """A registry of named counters and histograms."""

    __slots__ = ("counters", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------- recording

    def count(self, name: str, n: int = 1) -> None:
        """Bump the named counter by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named histogram."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def merge_counters(self, counters: Mapping[str, int], prefix: str = "") -> None:
        """Fold a counter mapping in (used for guard per-site counters)."""
        for name, value in counters.items():
            if value:
                self.count(prefix + name, value)

    def merge(self, other: "Metrics") -> None:
        """Fold another registry's counters and histograms into this one."""
        self.merge_counters(other.counters)
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram()
            mine.merge(histogram)

    # ------------------------------------------------------------ inspection

    def counter(self, name: str) -> int:
        """The named counter's value (0 when never bumped)."""
        return self.counters.get(name, 0)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self.histograms.get(name)

    def is_empty(self) -> bool:
        return not self.counters and not self.histograms

    def snapshot(self) -> dict:
        """All instruments as a plain nested dict (stable, JSON-safe)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: h.snapshot() for name, h in sorted(self.histograms.items())
            },
        }

    def __repr__(self) -> str:
        return (
            f"<Metrics {len(self.counters)} counter(s), "
            f"{len(self.histograms)} histogram(s)>"
        )
