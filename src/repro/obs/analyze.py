"""Trace analysis: critical paths and bottleneck aggregation.

The obs layer *captures* where the time went (``repro.trace/1``
documents, stitched across processes); this module *answers* the
question.  Everything here consumes the plain exported document — not
a live :class:`~repro.obs.trace.Tracer` — so analyses run offline, on
traces from other machines, and inside the ``repro trace`` CLI family
without re-executing anything.

* :func:`critical_path` — the chain of spans that determined the
  trace's wall time.  On a stitched parallel trace the worker spans
  participate: when the latest work under a dispatch span happened
  inside a pool worker, the path descends into that worker's grafted
  spans, so "the query was slow because shard 3's join kernel was
  slow" falls out of the walk.

* :func:`analyze_trace` — the full report: the critical path, per-span-
  name operator aggregates (calls, total, *self* seconds — duration
  minus child durations, the time a span spent in its own code), and
  per-phase aggregates (the leading dotted component of the span name:
  ``fo``, ``seminaive``, ``relation``, ``parallel``, ``worker``, ...).

* :func:`render_analysis` — the aligned-text form ``repro trace
  analyze`` prints.

Critical-path algorithm (the standard one for span trees): walk
backwards from a span's end; repeatedly take the *latest-ending* child
that closed before the cursor, attribute the uncovered gap to the
current span, recurse into that child, and continue from the child's
start.  Gaps are the span's own (self) contribution; the segment
seconds therefore partition the root's duration exactly — the
reconciliation invariant ``sum(segment.seconds) == root.duration``
(within float error) that ``tests/obs/test_analyze.py`` pins.
Overlapping siblings (parallel workers) are handled naturally: the
cursor jumps to the chosen child's start, skipping siblings whose work
was hidden under it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = [
    "critical_path",
    "span_self_seconds",
    "operator_hotspots",
    "phase_totals",
    "analyze_trace",
    "render_analysis",
]


def _closed_spans(document: dict) -> List[dict]:
    """The document's closed spans (open spans carry no duration and
    cannot sit on a timed path)."""
    return [s for s in document.get("spans", ()) if s.get("end") is not None]


def _children_index(spans: List[dict]) -> Dict[Optional[int], List[dict]]:
    index: Dict[Optional[int], List[dict]] = {}
    for span in spans:
        index.setdefault(span["parent"], []).append(span)
    return index


def _descend(span: dict, index, segments: List[dict], depth: int) -> None:
    """Attribute ``span``'s interval to the critical chain below it."""
    children = sorted(
        index.get(span["id"], ()), key=lambda s: s["end"], reverse=True
    )
    cursor = span["end"]
    chosen: List[dict] = []
    for child in children:
        # the latest-ending child that closed before the cursor is the
        # one that determined the wall clock at that instant; children
        # overlapping it (parallel siblings) were hidden under it
        if child["end"] <= cursor and child["end"] > child["start"]:
            chosen.append(child)
            cursor = child["start"]
            if cursor <= span["start"]:
                break
    # chosen is in reverse time order; the gaps between consecutive
    # chosen children (and before the first / after the last) are the
    # span's own contribution
    gap_total = span["end"] - span["start"]
    for child in chosen:
        gap_total -= min(child["end"], span["end"]) - max(
            child["start"], span["start"]
        )
    segments.append(
        {
            "span": span["id"],
            "name": span["name"],
            "depth": depth,
            "start": span["start"],
            "end": span["end"],
            "seconds": max(gap_total, 0.0),
            "attrs": dict(span.get("attrs") or {}),
        }
    )
    for child in reversed(chosen):  # chronological order
        _descend(child, index, segments, depth + 1)


def critical_path(document: dict) -> List[dict]:
    """The spans that determined the trace's wall time, in tree order.

    Returns one segment dict per span on the path: ``span`` (id),
    ``name``, ``depth``, ``start``/``end`` (the span's own interval),
    ``seconds`` (the *exclusive* share of wall time attributed to the
    span — its duration minus the path-children intervals inside it),
    and ``attrs``.  Segment seconds over all entries sum to the total
    duration of the root spans, so the path is an exact decomposition
    of the wall time, not a sampling.
    """
    spans = _closed_spans(document)
    if not spans:
        return []
    index = _children_index(spans)
    segments: List[dict] = []
    roots = sorted(index.get(None, ()), key=lambda s: s["start"])
    for root in roots:
        _descend(root, index, segments, 0)
    return segments


def span_self_seconds(spans: List[dict]) -> Dict[int, float]:
    """Per-span *self* time: duration minus the summed durations of its
    direct children, clamped at zero (overlapping worker children can
    sum past the parent)."""
    child_total: Dict[Optional[int], float] = {}
    for span in spans:
        child_total[span["parent"]] = child_total.get(span["parent"], 0.0) + (
            span["end"] - span["start"]
        )
    return {
        span["id"]: max(
            span["end"] - span["start"] - child_total.get(span["id"], 0.0), 0.0
        )
        for span in spans
    }


def operator_hotspots(document: dict) -> List[dict]:
    """Per-span-name aggregates, hottest self-time first.

    One row per distinct span name: ``name``, ``calls``, ``seconds``
    (summed durations), ``self_seconds`` (summed exclusive time — the
    honest bottleneck metric: a parent that merely waits on children
    aggregates near zero), ``max_seconds`` (slowest single call).
    """
    spans = _closed_spans(document)
    self_seconds = span_self_seconds(spans)
    rows: Dict[str, dict] = {}
    for span in spans:
        row = rows.get(span["name"])
        if row is None:
            row = rows[span["name"]] = {
                "name": span["name"], "calls": 0, "seconds": 0.0,
                "self_seconds": 0.0, "max_seconds": 0.0,
            }
        duration = span["end"] - span["start"]
        row["calls"] += 1
        row["seconds"] += duration
        row["self_seconds"] += self_seconds[span["id"]]
        row["max_seconds"] = max(row["max_seconds"], duration)
    return sorted(
        rows.values(), key=lambda r: (-r["self_seconds"], r["name"])
    )


def phase_totals(document: dict) -> List[dict]:
    """Self-time grouped by phase — the leading dotted component of the
    span name (``relation.join`` → ``relation``) — largest first."""
    spans = _closed_spans(document)
    self_seconds = span_self_seconds(spans)
    rows: Dict[str, dict] = {}
    for span in spans:
        phase = span["name"].split(".", 1)[0]
        row = rows.get(phase)
        if row is None:
            row = rows[phase] = {"phase": phase, "spans": 0, "self_seconds": 0.0}
        row["spans"] += 1
        row["self_seconds"] += self_seconds[span["id"]]
    return sorted(rows.values(), key=lambda r: (-r["self_seconds"], r["phase"]))


def analyze_trace(document: dict) -> dict:
    """The full analysis of one ``repro.trace/1`` document.

    Keys: ``total_seconds`` (summed root durations), ``spans`` (closed
    span count), ``open_spans``, ``critical_path`` (see
    :func:`critical_path`, each segment with a ``pct`` share of total),
    ``operators`` (:func:`operator_hotspots`), ``phases``
    (:func:`phase_totals`), ``worker_seconds`` (summed durations of
    stitched ``worker.*`` spans — 0.0 on a serial trace).
    """
    spans = _closed_spans(document)
    roots = [s for s in spans if s["parent"] is None]
    total = sum(s["end"] - s["start"] for s in roots)
    path = critical_path(document)
    for segment in path:
        segment["pct"] = 100.0 * segment["seconds"] / total if total else 0.0
    return {
        "total_seconds": total,
        "spans": len(spans),
        "open_spans": len(document.get("spans", ())) - len(spans),
        "critical_path": path,
        "operators": operator_hotspots(document),
        "phases": phase_totals(document),
        "worker_seconds": sum(
            s["end"] - s["start"]
            for s in spans
            if s["name"].startswith("worker.")
        ),
    }


def _fmt(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:9.3f} s "
    if seconds >= 0.001:
        return f"{seconds * 1000:9.3f} ms"
    return f"{seconds * 1e6:9.1f} µs"


def render_analysis(analysis: dict, *, max_path: int = 40) -> str:
    """The :func:`analyze_trace` report as aligned text (the
    ``repro trace analyze`` surface)."""
    total = analysis["total_seconds"]
    lines = [
        f"trace analysis: {analysis['spans']} span(s), "
        f"total {_fmt(total).strip()}"
        + (f", {analysis['open_spans']} never closed"
           if analysis["open_spans"] else "")
    ]
    if analysis["worker_seconds"]:
        lines[0] += (
            f", {_fmt(analysis['worker_seconds']).strip()} inside workers"
        )
    path = analysis["critical_path"]
    if path:
        lines.append("")
        lines.append(f"critical path ({len(path)} segment(s)):")
        shown = path[:max_path]
        for segment in shown:
            indent = "  " * segment["depth"]
            extras = ""
            attrs = segment["attrs"]
            marks = [
                f"{key}={attrs[key]}"
                for key in ("pid", "shard", "attempt", "quarantined")
                if key in attrs
            ]
            if marks:
                extras = f" [{', '.join(marks)}]"
            lines.append(
                f"  {_fmt(segment['seconds'])} {segment['pct']:5.1f}%  "
                f"{indent}{segment['name']}{extras}"
            )
        if len(path) > max_path:
            rest = sum(s["seconds"] for s in path[max_path:])
            lines.append(
                f"  {_fmt(rest)} {100.0 * rest / total if total else 0.0:5.1f}%  "
                f"… {len(path) - max_path} more segment(s)"
            )
    operators = analysis["operators"]
    if operators:
        lines.append("")
        lines.append("hotspots (self time):")
        width = max(len(r["name"]) for r in operators[:15])
        width = max(width, len("span"))
        lines.append(
            f"  {'span'.ljust(width)} {'calls':>6} {'self':>12} "
            f"{'total':>12} {'max call':>12}"
        )
        for row in operators[:15]:
            lines.append(
                f"  {row['name'].ljust(width)} {row['calls']:>6} "
                f"{_fmt(row['self_seconds'])} {_fmt(row['seconds'])} "
                f"{_fmt(row['max_seconds'])}"
            )
    phases = analysis["phases"]
    if phases:
        lines.append("")
        lines.append("phases (self time):")
        width = max(len(r["phase"]) for r in phases)
        width = max(width, len("phase"))
        for row in phases:
            share = 100.0 * row["self_seconds"] / total if total else 0.0
            lines.append(
                f"  {row['phase'].ljust(width)} {_fmt(row['self_seconds'])} "
                f"{share:5.1f}%  ({row['spans']} span(s))"
            )
    return "\n".join(lines)
