"""Observability: evaluation tracing, metrics, and EXPLAIN profiling.

The complexity results this repo reproduces (AC⁰/NC data complexity,
Datalog¬ = PTIME) are claims about *where the work goes* — QE step
counts, relation representation sizes, rounds to fixpoint.  This
package makes those quantities visible on every evaluation path
without changing any engine signature:

* :mod:`repro.obs.trace` — :class:`Tracer` and the ambient
  :func:`span` API (ContextVar collection mirroring
  :func:`repro.runtime.guard.active_guard`; a single context-variable
  read on the disabled path);
* :mod:`repro.obs.metrics` — counters + histograms for QE
  eliminations, per-operator relation sizes in/out, fixpoint rounds
  and delta sizes, cell-decomposition counts;
* :mod:`repro.obs.export` — structured JSON trace documents
  (``repro.trace/1``), validation, and round-trip loading;
* :mod:`repro.obs.profile` — the per-phase cost tree behind
  ``python -m repro.cli explain`` and the profile ingestion in
  ``benchmarks/collect_results.py``;
* :mod:`repro.obs.ledger` — the per-operator cost ledger
  (``repro.profile/1``): estimated-vs-actual cardinalities, kernel
  cache attribution, and dispatch shape per relation-algebra call
  (the ``repro profile`` subcommand);
* :mod:`repro.obs.stitch` — cross-process trace stitching: worker-side
  telemetry snapshots (``repro.worker-telemetry/1``) grafted into the
  parent tracer at shard-harvest time, so traces, stats, and the
  flight recorder see inside the worker pool;
* :mod:`repro.obs.analyze` — critical-path extraction and per-operator
  / per-phase bottleneck aggregation over exported trace documents
  (the ``repro trace analyze`` subcommand);
* :mod:`repro.obs.flame` — collapsed-stack and speedscope flame-graph
  export (``repro trace flame``);
* :mod:`repro.obs.diff` — structural trace diffing attributing a
  latency delta to named operators (``repro.trace-diff/1``; the
  ``repro trace diff`` subcommand and bench-watch regression reports);
* :mod:`repro.obs.memory` — opt-in per-span memory attribution
  (``--memory``): cheap RSS-based by default, exact tracemalloc on
  request, flowing into span attrs and cost-ledger memory fields.

Typical use::

    from repro.obs import Tracer, render_profile

    tracer = Tracer()
    with tracer:
        result = evaluate(formula, db)
    print(render_profile(tracer))

The disabled-path overhead (instrumentation present, no tracer active)
is gated < 5% by ``benchmarks/bench_e14_trace_overhead.py``, next to
E13's budget-guard gate.
"""

from repro.obs.analyze import (
    analyze_trace,
    critical_path,
    operator_hotspots,
    phase_totals,
    render_analysis,
    span_self_seconds,
)
from repro.obs.diff import (
    TRACE_DIFF_SCHEMA,
    diff_traces,
    load_trace_diff,
    render_trace_diff,
    validate_trace_diff,
    write_trace_diff,
)
from repro.obs.export import (
    TRACE_SCHEMA,
    guard_stats_table,
    kernel_stats_table,
    load_trace,
    trace_document,
    validate_trace,
    write_trace,
)
from repro.obs.flame import (
    SPEEDSCOPE_SCHEMA,
    collapsed_stacks,
    speedscope_document,
    validate_speedscope,
    write_flame,
)
from repro.obs.flightrec import (
    POSTMORTEM_SCHEMA,
    FlightRecorder,
    configure_flight_recorder,
    flight_recorder,
    last_postmortem,
    load_postmortem,
    validate_postmortem,
)
from repro.obs.history import (
    HISTORY_SCHEMA,
    append_history,
    compare_latest,
    load_history,
    render_watch_report,
    validate_history_record,
)
from repro.obs.ledger import (
    PROFILE_SCHEMA,
    CostLedger,
    CostRecord,
    load_profile,
    profile_document,
    render_cost_ledger,
    validate_profile,
    write_profile,
)
from repro.obs.log import LOG_SCHEMA, log_event
from repro.obs.memory import MemoryProfiler, memory_summary
from repro.obs.metrics import Histogram, Metrics
from repro.obs.profile import phase_breakdown, render_metrics_summary, render_profile
from repro.obs.sink import (
    LEVELS,
    CollectingSink,
    JsonlSink,
    RingBufferSink,
    Sink,
    prometheus_text,
    write_prometheus,
)
from repro.obs.stitch import (
    WORKER_TELEMETRY_SCHEMA,
    snapshot_telemetry,
    stitch_telemetry,
)
from repro.obs.trace import SpanRecord, Tracer, active_tracer, event, span

__all__ = [
    "HISTORY_SCHEMA",
    "LEVELS",
    "LOG_SCHEMA",
    "POSTMORTEM_SCHEMA",
    "PROFILE_SCHEMA",
    "SPEEDSCOPE_SCHEMA",
    "TRACE_DIFF_SCHEMA",
    "TRACE_SCHEMA",
    "WORKER_TELEMETRY_SCHEMA",
    "CollectingSink",
    "CostLedger",
    "CostRecord",
    "FlightRecorder",
    "Histogram",
    "JsonlSink",
    "MemoryProfiler",
    "Metrics",
    "RingBufferSink",
    "Sink",
    "SpanRecord",
    "Tracer",
    "active_tracer",
    "analyze_trace",
    "append_history",
    "collapsed_stacks",
    "compare_latest",
    "configure_flight_recorder",
    "critical_path",
    "diff_traces",
    "event",
    "flight_recorder",
    "guard_stats_table",
    "kernel_stats_table",
    "last_postmortem",
    "load_history",
    "load_postmortem",
    "load_profile",
    "load_trace",
    "load_trace_diff",
    "log_event",
    "memory_summary",
    "operator_hotspots",
    "phase_breakdown",
    "phase_totals",
    "profile_document",
    "prometheus_text",
    "render_analysis",
    "render_cost_ledger",
    "render_metrics_summary",
    "render_profile",
    "render_trace_diff",
    "render_watch_report",
    "snapshot_telemetry",
    "span",
    "span_self_seconds",
    "speedscope_document",
    "stitch_telemetry",
    "trace_document",
    "validate_history_record",
    "validate_postmortem",
    "validate_profile",
    "validate_speedscope",
    "validate_trace",
    "validate_trace_diff",
    "write_flame",
    "write_profile",
    "write_prometheus",
    "write_trace",
]
