"""Benchmark history: append-only runs and the regression watch.

``benchmarks/BENCH_*.json`` snapshots overwrite each other, so the
benchmark *trajectory* across PRs was invisible — a 2x slowdown that
lands between two snapshot regenerations is never seen.  This module
gives the repo an append-only record:

* :func:`append_history` appends one ``repro.bench-history/1`` record
  (provenance-stamped: git commit, python, platform, timestamp) per
  ``collect_results.py`` run to ``benchmarks/BENCH_HISTORY.jsonl``;
* :func:`compare_latest` — the engine behind ``repro bench-watch`` —
  compares the newest record's metrics against a trailing baseline
  (the median of the previous ``window`` records, per metric) and
  flags any metric slower than ``threshold`` times its baseline.

One record::

    {
      "schema": "repro.bench-history/1",
      "created_unix": 1699...,
      "provenance": {"git": "996273f", "python": "3.12.1",
                     "platform": "Linux-...", "argv": "..."},
      "metrics": {"datalog-naive-tc.seconds": 0.41, ...}
    }

Metrics are "lower is better" seconds; the comparison is deliberately
unitless so counter-style metrics work too.  The median baseline makes
one noisy historical run harmless; the window keeps a slow drift from
poisoning the baseline forever.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from statistics import median
from typing import Dict, List, Optional

from repro.errors import EncodingError

__all__ = [
    "HISTORY_SCHEMA",
    "provenance",
    "append_history",
    "load_history",
    "validate_history_record",
    "compare_latest",
    "render_watch_report",
]

#: schema identifier stamped on every bench-history record
HISTORY_SCHEMA = "repro.bench-history/1"


def provenance() -> dict:
    """Who/where/when produced this record (best effort; never raises)."""
    try:
        git = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        git = None
    return {
        "git": git,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "argv": " ".join(sys.argv),
    }


def append_history(
    path: str,
    metrics: Dict[str, float],
    *,
    stamp: Optional[dict] = None,
) -> dict:
    """Append one provenance-stamped record to the JSONL file at
    ``path`` (created if missing); returns the record."""
    record = {
        "schema": HISTORY_SCHEMA,
        "created_unix": time.time(),
        "provenance": stamp if stamp is not None else provenance(),
        "metrics": {str(k): float(v) for k, v in metrics.items()},
    }
    validate_history_record(record)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True))
        handle.write("\n")
    return record


def _fail(message: str) -> None:
    raise EncodingError(f"invalid bench-history record: {message}")


def validate_history_record(record) -> dict:
    """Check one record's invariants; returns the record."""
    if not isinstance(record, dict):
        _fail("not an object")
    if record.get("schema") != HISTORY_SCHEMA:
        _fail(
            f"schema is {record.get('schema')!r}, expected {HISTORY_SCHEMA!r}"
        )
    metrics = record.get("metrics")
    if not isinstance(metrics, dict):
        _fail("metrics must be an object")
    for name, value in metrics.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            _fail(f"metric {name!r} is not a number")
        if value < 0:
            _fail(f"metric {name!r} is negative")
    if "created_unix" not in record or "provenance" not in record:
        _fail("missing created_unix/provenance")
    return record


def load_history(path: str) -> List[dict]:
    """Read and validate every record in a JSONL history file."""
    records: List[dict] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise EncodingError(
                    f"bench history {path!r} line {lineno} is not JSON: {error}"
                ) from None
            records.append(validate_history_record(record))
    return records


def compare_latest(
    records: List[dict],
    *,
    threshold: float = 1.5,
    window: int = 5,
) -> dict:
    """Compare the newest record against the trailing baseline.

    Per metric in the latest record, the baseline is the median of the
    same metric over the previous up-to-``window`` records that carry
    it; the metric *regressed* when ``latest > threshold * baseline``.
    Metrics with no prior observations are reported but never flagged
    (a freshly added benchmark must not fail the watch).

    Returns ``{"status", "threshold", "window", "baseline_runs",
    "rows"}`` with status ``"ok"``, ``"regression"``, or
    ``"insufficient-history"`` (fewer than two records).
    """
    if len(records) < 2:
        return {
            "status": "insufficient-history",
            "threshold": threshold,
            "window": window,
            "baseline_runs": max(0, len(records) - 1),
            "rows": [],
        }
    latest = records[-1]
    trailing = records[-(window + 1):-1]
    rows = []
    regressed_any = False
    for name in sorted(latest["metrics"]):
        value = latest["metrics"][name]
        prior = [r["metrics"][name] for r in trailing if name in r["metrics"]]
        if not prior:
            rows.append(
                {"metric": name, "latest": value, "baseline": None,
                 "ratio": None, "regressed": False}
            )
            continue
        baseline = median(prior)
        ratio = value / baseline if baseline > 0 else float("inf")
        regressed = ratio > threshold
        regressed_any = regressed_any or regressed
        rows.append(
            {"metric": name, "latest": value, "baseline": baseline,
             "ratio": ratio, "regressed": regressed}
        )
    return {
        "status": "regression" if regressed_any else "ok",
        "threshold": threshold,
        "window": window,
        "baseline_runs": len(trailing),
        "rows": rows,
    }


def render_watch_report(report: dict) -> str:
    """The :func:`compare_latest` report as aligned text (the
    ``bench-watch`` CLI surface)."""
    if report["status"] == "insufficient-history":
        return (
            "bench-watch: insufficient history "
            f"({report['baseline_runs'] + 1} record(s); need at least 2)"
        )
    lines = [
        f"bench-watch: latest run vs median of previous "
        f"{report['baseline_runs']} run(s), threshold {report['threshold']:g}x"
    ]
    width = max((len(r["metric"]) for r in report["rows"]), default=6)
    width = max(width, len("metric"))
    lines.append(
        f"  {'metric'.ljust(width)} {'latest':>10} {'baseline':>10} "
        f"{'ratio':>7}  verdict"
    )
    for row in report["rows"]:
        if row["baseline"] is None:
            lines.append(
                f"  {row['metric'].ljust(width)} {row['latest']:>10.4f} "
                f"{'(new)':>10} {'-':>7}  ok"
            )
            continue
        verdict = "REGRESSED" if row["regressed"] else "ok"
        lines.append(
            f"  {row['metric'].ljust(width)} {row['latest']:>10.4f} "
            f"{row['baseline']:>10.4f} {row['ratio']:>6.2f}x  {verdict}"
        )
    lines.append(f"status: {report['status']}")
    return "\n".join(lines)
