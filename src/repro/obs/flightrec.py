"""Always-on flight recorder and ``repro.postmortem/1`` documents.

An aborted evaluation is exactly the one whose telemetry matters most,
and exactly the one that never reaches ``write_trace``.  The flight
recorder closes that gap: a process-wide bounded ring receives every
structured log record any tracer emits (span closes, instant events,
engine round logs — see :mod:`repro.obs.log`), and when an evaluation
dies inside an :class:`~repro.runtime.guard.EvaluationGuard` — a
budget error, an injected fault, any uncaught exception — the guard's
outermost ``__exit__`` asks the recorder to capture a *post-mortem
document*:

::

    {
      "schema": "repro.postmortem/1",
      "reason": "guard" | "fault" | "manual",
      "error": {"type", "message", "diagnostics"} | null,
      "trace": {"id", "active_spans", "metrics"} | null,
      "guard": EvaluationGuard.stats() | null,
      "parallel": ExecutionContext.stats() + last_batch | null,
      "kernel": repro.perf.kernel_stats(),
      "events": [last ring records, oldest first],
      "events_dropped": 0,
      "created_unix": 1699...
    }

The document is always kept in memory (:func:`last_postmortem`) so the
CLI can surface partial guard counters after a budget abort; when a
dump directory is configured (:func:`configure_flight_recorder`, or
``--postmortem-dir`` on the CLI) it is also written to
``postmortem-<seq>.json`` there.  Recording one ring entry is a dict
append — the recorder never makes the failure worse; building the
document only happens on the failure path.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Optional

from repro.obs.sink import RingBufferSink

__all__ = [
    "POSTMORTEM_SCHEMA",
    "FlightRecorder",
    "flight_recorder",
    "configure_flight_recorder",
    "record",
    "last_postmortem",
    "load_postmortem",
    "validate_postmortem",
]

#: schema identifier stamped on every post-mortem document
POSTMORTEM_SCHEMA = "repro.postmortem/1"

#: default ring capacity (last N telemetry records kept for post-mortems)
DEFAULT_CAPACITY = 256


class FlightRecorder:
    """One bounded ring of recent telemetry plus the dump machinery.

    The module-level instance (:func:`flight_recorder`) is the one the
    tracers and the guard talk to; tests may build private instances.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.ring = RingBufferSink(capacity)
        self.enabled = True
        self.dump_dir: Optional[str] = None
        self.last_document: Optional[dict] = None
        self.last_path: Optional[str] = None
        self.dumps = 0
        self._last_error: Optional[BaseException] = None

    # -------------------------------------------------------------- recording

    def record(self, entry: dict) -> None:
        """Append one telemetry record to the ring (cheap, bounded)."""
        if self.enabled:
            self.ring.emit(entry)

    def configure(
        self,
        *,
        capacity: Optional[int] = None,
        dump_dir: Optional[str] = None,
        enabled: Optional[bool] = None,
    ) -> "FlightRecorder":
        """Reconfigure in place; ``capacity`` resets the ring."""
        if capacity is not None and capacity != self.ring.capacity:
            self.ring = RingBufferSink(capacity)
        if dump_dir is not None:
            self.dump_dir = dump_dir or None
        if enabled is not None:
            self.enabled = enabled
        return self

    def reset(self) -> None:
        """Clear the ring, the remembered post-mortem, and the dump
        sequence (tests)."""
        self.ring.clear()
        self.last_document = None
        self.last_path = None
        self.dumps = 0
        self._last_error = None

    # ---------------------------------------------------------------- dumping

    def postmortem(
        self,
        *,
        error: Optional[BaseException] = None,
        guard=None,
        tracer=None,
        reason: str = "manual",
    ) -> dict:
        """Build (but do not store or write) a post-mortem document."""
        from repro.perf import kernel_stats

        error_doc: Optional[dict] = None
        if error is not None:
            error_doc = {
                "type": type(error).__name__,
                "message": str(error),
                "diagnostics": (
                    error.diagnostics() if hasattr(error, "diagnostics") else None
                ),
            }
        # resilience accounting: when a parallel context is active at
        # capture time, its recovery counters (retries, quarantines,
        # pool restarts, dropped shards) explain *how* the evaluation
        # got where it died — optional section, absent on serial runs
        parallel_doc: Optional[dict] = None
        try:
            from repro.parallel.context import active_execution_context

            ctx = active_execution_context()
            if ctx is not None:
                parallel_doc = ctx.stats()
                if ctx.last_report is not None:
                    parallel_doc["last_batch"] = ctx.last_report.as_dict()
        except Exception:
            parallel_doc = None  # never make the failure path worse
        trace_doc: Optional[dict] = None
        if tracer is not None:
            trace_doc = {
                "id": tracer.trace_id,
                "active_spans": [
                    {"id": s.span_id, "name": s.name, "start": s.start,
                     "attrs": {k: _scalar(v) for k, v in s.attrs.items()}}
                    for s in tracer.spans
                    if s.end is None
                ],
                "metrics": tracer.metrics.snapshot(),
                "dropped_spans": tracer.dropped_spans,
            }
        return {
            "schema": POSTMORTEM_SCHEMA,
            "reason": reason,
            "error": error_doc,
            "trace": trace_doc,
            "guard": guard.stats() if guard is not None else None,
            "parallel": parallel_doc,
            "kernel": kernel_stats(),
            "events": [dict(entry) for entry in self.ring.snapshot()],
            "events_dropped": self.ring.dropped,
            "created_unix": time.time(),
        }

    def dump(
        self,
        *,
        error: Optional[BaseException] = None,
        guard=None,
        tracer=None,
        reason: str = "manual",
    ) -> Optional[str]:
        """Capture a post-mortem: remember it, write it when a dump
        directory is configured, and return the path written (if any).

        The same error object is captured at most once — a fault that
        raises inside a guard would otherwise be dumped by both hooks.
        (The recorder keeps a reference, not an ``id()``: a collected
        error's address can be reused by the very next exception.)
        """
        if not self.enabled:
            return None
        if error is not None and error is self._last_error:
            return self.last_path
        document = self.postmortem(
            error=error, guard=guard, tracer=tracer, reason=reason
        )
        self.last_document = document
        self.last_path = None
        if error is not None:
            self._last_error = error
        if self.dump_dir:
            os.makedirs(self.dump_dir, exist_ok=True)
            self.dumps += 1
            path = os.path.join(
                self.dump_dir, f"postmortem-{self.dumps:04d}.json"
            )
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2, sort_keys=True, default=str)
                handle.write("\n")
            self.last_path = path
        return self.last_path

    # ------------------------------------------------------------ guard hooks

    def on_guard_exception(self, guard, error: BaseException, tracer) -> None:
        """Called by the guard's outermost ``__exit__`` on exception."""
        self.dump(error=error, guard=guard, tracer=tracer, reason="guard")

    def on_fault(self, site: str, error: BaseException) -> None:
        """Called by :class:`~repro.runtime.faults.FaultRegistry` when
        an armed fault raises."""
        from repro.obs.trace import active_tracer

        self.record(
            {
                "schema": "repro.log/1",
                "ts": time.time(),
                "level": "error",
                "kind": "log",
                "name": "fault.fired",
                "trace": None,
                "span": None,
                "attrs": {"site": site, "error": type(error).__name__},
            }
        )
        self.dump(error=error, tracer=active_tracer(), reason="fault")


def _scalar(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


_RECORDER = FlightRecorder()


def flight_recorder() -> FlightRecorder:
    """The process-wide flight recorder."""
    return _RECORDER


def configure_flight_recorder(
    *,
    capacity: Optional[int] = None,
    dump_dir: Optional[str] = None,
    enabled: Optional[bool] = None,
) -> FlightRecorder:
    """Reconfigure the process-wide recorder (the ``--postmortem-dir``
    CLI surface); returns it."""
    return _RECORDER.configure(
        capacity=capacity, dump_dir=dump_dir, enabled=enabled
    )


def record(entry: dict) -> None:
    """Append one record to the process-wide ring (called by the
    tracer's emit path)."""
    _RECORDER.record(entry)


def last_postmortem() -> Optional[dict]:
    """The most recently captured post-mortem document, if any."""
    return _RECORDER.last_document


# ------------------------------------------------------------- serialization


def _fail(message: str) -> None:
    from repro.errors import EncodingError

    raise EncodingError(f"invalid postmortem document: {message}")


def validate_postmortem(document: Any) -> dict:
    """Check the ``repro.postmortem/1`` invariants; returns the doc."""
    if not isinstance(document, dict):
        _fail("not an object")
    if document.get("schema") != POSTMORTEM_SCHEMA:
        _fail(
            f"schema is {document.get('schema')!r}, "
            f"expected {POSTMORTEM_SCHEMA!r}"
        )
    for key in ("reason", "error", "trace", "guard", "kernel", "events",
                "events_dropped", "created_unix"):
        if key not in document:
            _fail(f"missing key {key!r}")
    if not isinstance(document["events"], list):
        _fail("events must be an array")
    for entry in document["events"]:
        if not isinstance(entry, dict) or "name" not in entry:
            _fail("event record missing name")
    error = document["error"]
    if error is not None and (
        not isinstance(error, dict) or "type" not in error
    ):
        _fail("error must be null or carry a type")
    guard = document["guard"]
    if guard is not None and not isinstance(guard, dict):
        _fail("guard must be null or an object")
    if not isinstance(document["events_dropped"], int):
        _fail("events_dropped must be an integer")
    return document


def load_postmortem(path: str) -> dict:
    """Read and validate a post-mortem document from disk."""
    from repro.errors import EncodingError

    with open(path, encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as err:
            raise EncodingError(
                f"postmortem file {path!r} is not JSON: {err}"
            ) from None
    return validate_postmortem(document)
