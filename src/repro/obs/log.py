"""Structured JSON-lines event logging, correlated with traces.

One *log record* is a flat JSON-safe dict::

    {
      "schema": "repro.log/1",
      "ts":     1.234,          # seconds on the tracer's monotonic clock
      "level":  "info",         # debug | info | warning | error
      "kind":   "log",          # log | span | event
      "name":   "datalog.naive.round",
      "trace":  "b2f1c9d4e0a7",  # the emitting tracer's correlation id
      "span":   7,               # innermost open span id, or null
      "attrs":  {"round": 3, "delta_tuples": 12}
    }

Records are *emitted through the tracer*: :func:`log_event` reads the
ambient :class:`~repro.obs.trace.Tracer` (one ContextVar read) and
does nothing when no tracer is active, so instrumented sites pay no
new cost when telemetry is off — the same contract as
:func:`repro.obs.trace.span`.  An active tracer fans each record out
to its attached sinks (:mod:`repro.obs.sink`), filtered per-sink by
``min_level``, and mirrors it into the process-wide flight-recorder
ring (:mod:`repro.obs.flightrec`) so the last N events survive to a
post-mortem.

Span closes and instant events are mirrored into the same stream
automatically (``kind: "span"`` / ``"event"``, level ``debug``), so a
JSONL sink sees the whole evaluation without the engines calling two
APIs.
"""

from __future__ import annotations

from typing import Any

from repro.obs.sink import LEVELS, level_number
from repro.obs.trace import LOG_SCHEMA, active_tracer

__all__ = ["LOG_SCHEMA", "LEVELS", "level_number", "log_event"]


def log_event(name: str, level: str = "info", **attrs: Any) -> None:
    """Emit one structured log record through the ambient tracer.

    A no-op (single ContextVar read) when no tracer is active, so this
    is safe to call from the engines' hot paths guarded by the same
    ``sp is not None`` checks that gate metric recording.
    """
    tracer = active_tracer()
    if tracer is not None:
        tracer.log(name, level=level, **attrs)
