"""repro: dense-order constraint databases.

A from-scratch implementation of the system studied in *"Dense-Order
Constraint Databases"* (Grumbach & Su, PODS 1995): finitely
representable databases over ``(Q, <=)``, the query languages FO,
FO+ (linear constraints), inflationary Datalog with negation, and the
complex-object calculus C-CALC -- plus the encodings, genericity tools,
and experiments that validate the paper's theorems.

Subpackages
-----------
``repro.core``        dense-order atoms, generalized relations, FO engine
``repro.linear``      linear constraints and FO+ (Fourier-Motzkin QE)
``repro.datalog``     inflationary Datalog with negation, closed-form
``repro.encoding``    cells, standard encoding, the PTIME capture pipeline
``repro.genericity``  automorphisms, EF games, inexpressibility search
``repro.cobjects``    complex constraint objects and C-CALC
``repro.queries``     canned queries (parity, connectivity, topology, ...)
``repro.workloads``   seeded workload generators for tests and benchmarks
``repro.runtime``     resource budgets, guards, degradation, fault injection
``repro.obs``         evaluation tracing, metrics, EXPLAIN profiling
``repro.perf``        kernel memo cache and generalized-tuple interning
``repro.parallel``    opt-in sharded parallel evaluation backend
"""

__version__ = "1.0.0"

from repro.core import (  # noqa: F401  (re-exported convenience surface)
    Database,
    GTuple,
    Interval,
    IntervalSet,
    Relation,
    Var,
    atom,
    eq,
    evaluate,
    evaluate_boolean,
    exists,
    forall,
    ge,
    gt,
    le,
    lt,
    ne,
    rel,
)
from repro.obs import (  # noqa: F401
    Tracer,
    render_profile,
    span,
)
from repro.parallel import (  # noqa: F401
    ExecutionContext,
)
from repro.perf import (  # noqa: F401
    kernel_cache_disabled,
    kernel_stats,
)
from repro.runtime import (  # noqa: F401
    Budget,
    BudgetExceeded,
    EvaluationGuard,
)

__all__ = [
    "Budget",
    "BudgetExceeded",
    "EvaluationGuard",
    "ExecutionContext",
    "Tracer",
    "kernel_cache_disabled",
    "kernel_stats",
    "render_profile",
    "span",
    "Database",
    "GTuple",
    "Interval",
    "IntervalSet",
    "Relation",
    "Var",
    "atom",
    "eq",
    "evaluate",
    "evaluate_boolean",
    "exists",
    "forall",
    "ge",
    "gt",
    "le",
    "lt",
    "ne",
    "rel",
    "__version__",
]
