"""Pretty-printers that round-trip through the parsers.

``format_formula`` and ``format_program`` emit the surface syntax of
:mod:`repro.lang.parser`; ``parse_formula(format_formula(f))`` is
structurally equal to ``f`` up to associativity flattening (and
semantically equal always) -- property-tested in
``tests/lang/test_formatter.py``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List

from repro.core.formula import (
    And,
    Constraint,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    RelationAtom,
    _Boolean,
)
from repro.core.terms import Const, Term, Var
from repro.datalog.ast import ConstraintLiteral, PredicateLiteral, Program, Rule
from repro.errors import ParseError

__all__ = ["format_formula", "format_program", "format_term"]


def format_term(term: Term) -> str:
    if isinstance(term, Var):
        return term.name
    value = term.value
    if value.denominator == 1:
        return str(value.numerator)
    return f"{value.numerator}/{value.denominator}"


#: precedence levels (higher binds tighter)
_IFF, _IMPLIES, _OR, _AND, _UNARY = range(5)


def _format(formula: Formula, parent_level: int) -> str:
    text, level = _render(formula)
    if level < parent_level:
        return f"({text})"
    return text


def _render(formula: Formula) -> tuple:
    if isinstance(formula, _Boolean):
        return ("true" if formula.value else "false", _UNARY)
    if isinstance(formula, Constraint):
        a = formula.atom
        if hasattr(a, "expr"):  # linear atom: "expr op 0" (linear surface syntax)
            return (f"{a.expr} {a.op.value} 0", _UNARY)
        return (
            f"{format_term(a.left)} {a.op.value} {format_term(a.right)}",
            _UNARY,
        )
    if isinstance(formula, RelationAtom):
        args = ", ".join(format_term(t) for t in formula.args)
        return (f"{formula.name}({args})", _UNARY)
    if isinstance(formula, Not):
        return (f"not {_format(formula.sub, _UNARY)}", _UNARY)
    if isinstance(formula, And):
        if not formula.subs:
            return ("true", _UNARY)
        parts = [_format(s, _AND + 1 if isinstance(s, And) else _AND) for s in formula.subs]
        return (" and ".join(parts), _AND)
    if isinstance(formula, Or):
        if not formula.subs:
            return ("false", _UNARY)
        parts = [_format(s, _OR + 1 if isinstance(s, Or) else _OR) for s in formula.subs]
        return (" or ".join(parts), _OR)
    if isinstance(formula, (Exists, ForAll)):
        word = "exists" if isinstance(formula, Exists) else "forall"
        names = ", ".join(v.name for v in formula.variables)
        # always parenthesize the body: a bare body starting with a
        # negative literal ("exists v -1 < v") would not re-tokenize
        body, _ = _render(formula.sub)
        return (f"{word} {names} ({body})", _UNARY)
    raise ParseError(f"cannot format formula node {type(formula).__name__}")


def format_formula(formula: Formula) -> str:
    """Emit a formula in the parseable surface syntax."""
    return _format(formula, _IFF)


def _format_literal(literal) -> str:
    if isinstance(literal, PredicateLiteral):
        args = ", ".join(format_term(t) for t in literal.args)
        text = f"{literal.name}({args})"
        return f"not {text}" if literal.negated else text
    if isinstance(literal, ConstraintLiteral):
        a = literal.atom
        return f"{format_term(a.left)} {a.op.value} {format_term(a.right)}"
    raise ParseError(f"cannot format literal {literal!r}")  # pragma: no cover


def format_program(program: Program) -> str:
    """Emit a Datalog program in the parseable surface syntax."""
    lines: List[str] = []
    for r in program.rules:
        head_args = ", ".join(v.name for v in r.head_args)
        head = f"{r.head_name}({head_args})"
        if r.body:
            body = ", ".join(_format_literal(l) for l in r.body)
            lines.append(f"{head} :- {body}.")
        else:
            lines.append(f"{head}.")
    return "\n".join(lines) + ("\n" if lines else "")
