"""Parsers for the textual FO and Datalog surface syntaxes.

FO formulas::

    exists y (T(x, y) and y < 5)
    forall a, b (a < b implies exists m (a < m and m < b))
    not S(x) or x = 1/2

Grammar (precedence low to high: ``iff`` < ``implies`` < ``or`` <
``and`` < ``not`` / quantifiers / atoms)::

    formula     := iff
    iff         := implies ("iff" implies)*
    implies     := or ("implies" or)*          (right-associative)
    or          := and ("or" and)*
    and         := unary ("and" unary)*
    unary       := "not" unary
                 | ("exists" | "forall") vars formula
                 | "(" formula ")"
                 | atom
    vars        := ident ("," ident)*
    atom        := "true" | "false"
                 | term OP term
                 | ident "(" terms ")"
    term        := ident | number

Datalog programs: a sequence of rules ``head(vars) :- body.`` where the
body mixes positive/negated predicate literals and comparison atoms::

    tc(x, y) :- e(x, y).
    tc(x, z) :- tc(x, y), e(y, z).
    far(x)   :- v(x), not tc(x, y), 0 < y.

EDB predicates are those never appearing in a head; their arities are
inferred from use.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.core.atoms import atom as make_atom
from repro.core.formula import (
    FALSE,
    TRUE,
    Exists,
    ForAll,
    Formula,
    Not,
    RelationAtom,
    conj,
    constraint,
    disj,
)
from repro.core.terms import Const, Term, Var
from repro.datalog.ast import (
    ConstraintLiteral,
    Literal,
    PredicateLiteral,
    Program,
    Rule,
)
from repro.errors import ParseError
from repro.lang.lexer import Token, tokenize

__all__ = ["parse_formula", "parse_program", "parse_term"]


class _Cursor:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.peek()
        if token[0] != kind or (text is not None and token[1] != text):
            want = text or kind
            raise ParseError(
                f"expected {want!r} at position {token[2]}, found {token[1]!r}"
            )
        return self.advance()

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token[0] == kind and (text is None or token[1] == text):
            return self.advance()
        return None


def _parse_single_term(cursor: _Cursor) -> Term:
    token = cursor.peek()
    if token[0] == "ident":
        cursor.advance()
        return Var(token[1])
    if token[0] == "number":
        cursor.advance()
        return Const(Fraction(token[1]))
    raise ParseError(f"expected a term at position {token[2]}, found {token[1]!r}")


def parse_term(text: str) -> Term:
    """Parse a single term (variable or rational literal)."""
    cursor = _Cursor(tokenize(text))
    term = _parse_single_term(cursor)
    cursor.expect("end")
    return term


# ------------------------------------------------------------------ formulas


def parse_formula(text: str) -> Formula:
    """Parse an FO formula from the surface syntax."""
    cursor = _Cursor(tokenize(text))
    formula = _parse_iff(cursor)
    cursor.expect("end")
    return formula


def _parse_iff(cursor: _Cursor) -> Formula:
    left = _parse_implies(cursor)
    while cursor.accept("keyword", "iff"):
        right = _parse_implies(cursor)
        left = left.iff(right)
    return left


def _parse_implies(cursor: _Cursor) -> Formula:
    left = _parse_or(cursor)
    if cursor.accept("keyword", "implies"):
        right = _parse_implies(cursor)  # right-associative
        return left.implies(right)
    return left


def _parse_or(cursor: _Cursor) -> Formula:
    parts = [_parse_and(cursor)]
    while cursor.accept("keyword", "or"):
        parts.append(_parse_and(cursor))
    return disj(*parts)


def _parse_and(cursor: _Cursor) -> Formula:
    parts = [_parse_unary(cursor)]
    while cursor.accept("keyword", "and"):
        parts.append(_parse_unary(cursor))
    return conj(*parts)


def _parse_unary(cursor: _Cursor) -> Formula:
    if cursor.accept("keyword", "not"):
        return Not(_parse_unary(cursor))
    if cursor.accept("keyword", "true"):
        return TRUE
    if cursor.accept("keyword", "false"):
        return FALSE
    quantifier = cursor.accept("keyword", "exists") or cursor.accept(
        "keyword", "forall"
    )
    if quantifier:
        names = [cursor.expect("ident")[1]]
        while cursor.accept("punct", ","):
            names.append(cursor.expect("ident")[1])
        body = _parse_unary(cursor)
        node = Exists if quantifier[1] == "exists" else ForAll
        return node(tuple(Var(n) for n in names), body)
    if cursor.accept("punct", "("):
        inner = _parse_iff(cursor)
        cursor.expect("punct", ")")
        return inner
    return _parse_atom(cursor)


def _parse_atom(cursor: _Cursor) -> Formula:
    token = cursor.peek()
    if token[0] == "ident" and cursor.tokens[cursor.index + 1][1] == "(":
        name = cursor.advance()[1]
        cursor.expect("punct", "(")
        args: List[Term] = []
        if not cursor.accept("punct", ")"):
            args.append(_parse_single_term(cursor))
            while cursor.accept("punct", ","):
                args.append(_parse_single_term(cursor))
            cursor.expect("punct", ")")
        return RelationAtom(name, tuple(args))
    left = _parse_single_term(cursor)
    op = cursor.expect("op")[1]
    right = _parse_single_term(cursor)
    return constraint(make_atom(left, op, right))


# ------------------------------------------------------------------ datalog


def parse_program(text: str) -> Program:
    """Parse a Datalog(not) program; EDB = predicates never in a head."""
    cursor = _Cursor(tokenize(text))
    rules: List[Rule] = []
    uses: Dict[str, int] = {}
    while cursor.peek()[0] != "end":
        rules.append(_parse_rule(cursor, uses))
    heads = {r.head_name for r in rules}
    edb = {name: arity for name, arity in uses.items() if name not in heads}
    return Program(rules, edb=edb)


def _parse_rule(cursor: _Cursor, uses: Dict[str, int]) -> Rule:
    head_name = cursor.expect("ident")[1]
    cursor.expect("punct", "(")
    head_args: List[Var] = []
    if not cursor.accept("punct", ")"):
        while True:
            token = cursor.expect("ident")
            head_args.append(Var(token[1]))
            if not cursor.accept("punct", ","):
                break
        cursor.expect("punct", ")")
    body: List[Literal] = []
    if cursor.accept("punct", ":-"):
        while True:
            body.append(_parse_literal(cursor, uses))
            if not cursor.accept("punct", ","):
                break
    cursor.expect("punct", ".")
    return Rule(head_name, tuple(head_args), tuple(body))


def _parse_literal(cursor: _Cursor, uses: Dict[str, int]) -> Literal:
    negated = bool(cursor.accept("keyword", "not"))
    token = cursor.peek()
    if token[0] == "ident" and cursor.tokens[cursor.index + 1][1] == "(":
        name = cursor.advance()[1]
        cursor.expect("punct", "(")
        args: List[Term] = []
        if not cursor.accept("punct", ")"):
            args.append(_parse_single_term(cursor))
            while cursor.accept("punct", ","):
                args.append(_parse_single_term(cursor))
            cursor.expect("punct", ")")
        known = uses.setdefault(name, len(args))
        if known != len(args):
            raise ParseError(
                f"predicate {name} used with arities {known} and {len(args)}"
            )
        return PredicateLiteral(name, tuple(args), negated=negated)
    if negated:
        raise ParseError(
            f"'not' must precede a predicate literal (position {token[2]})"
        )
    left = _parse_single_term(cursor)
    op = cursor.expect("op")[1]
    right = _parse_single_term(cursor)
    made = make_atom(left, op, right)
    if isinstance(made, bool):
        raise ParseError(f"trivial constraint near position {token[2]}; drop it")
    return ConstraintLiteral(made)
