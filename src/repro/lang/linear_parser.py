"""Parser for FO+ formulas: linear expressions in atoms.

Extends the FO surface syntax with linear arithmetic in comparisons::

    exists y (R(x, y) and x + y <= 1)
    2*x - y = 1/2
    forall x (S(x) implies x + x < 10)

Grammar of linear expressions (no nesting needed -- the language is
linear)::

    lexpr   := ["-"] lterm (("+" | "-") lterm)*
    lterm   := number "*" ident | number | ident

Comparisons between two ``lexpr`` produce
:class:`~repro.linear.latoms.LinAtom` constraints (``!=`` expands to a
disjunction of strict atoms).  The boolean/quantifier grammar is shared
with :func:`repro.lang.parser.parse_formula`; relation atoms are
recognized exactly as there.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional

from repro.core.formula import (
    FALSE,
    TRUE,
    Constraint,
    Exists,
    ForAll,
    Formula,
    Not,
    RelationAtom,
    conj,
    disj,
)
from repro.core.terms import Const, Term, Var
from repro.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.parser import _Cursor
from repro.linear.latoms import LinExpr, LinOp, lin_ne, linatom

__all__ = ["parse_linear_formula", "parse_linear_expression"]


def parse_linear_formula(text: str) -> Formula:
    """Parse an FO+ formula (evaluate with ``theory=LINEAR``)."""
    cursor = _Cursor(tokenize(text))
    formula = _parse_iff(cursor)
    cursor.expect("end")
    return formula


def parse_linear_expression(text: str) -> LinExpr:
    """Parse a standalone linear expression."""
    cursor = _Cursor(tokenize(text))
    expr = _parse_lexpr(cursor)
    cursor.expect("end")
    return expr


# --------------------------------------------------------------- connectives


def _parse_iff(cursor: _Cursor) -> Formula:
    left = _parse_implies(cursor)
    while cursor.accept("keyword", "iff"):
        left = left.iff(_parse_implies(cursor))
    return left


def _parse_implies(cursor: _Cursor) -> Formula:
    left = _parse_or(cursor)
    if cursor.accept("keyword", "implies"):
        return left.implies(_parse_implies(cursor))
    return left


def _parse_or(cursor: _Cursor) -> Formula:
    parts = [_parse_and(cursor)]
    while cursor.accept("keyword", "or"):
        parts.append(_parse_and(cursor))
    return disj(*parts)


def _parse_and(cursor: _Cursor) -> Formula:
    parts = [_parse_unary(cursor)]
    while cursor.accept("keyword", "and"):
        parts.append(_parse_unary(cursor))
    return conj(*parts)


def _parse_unary(cursor: _Cursor) -> Formula:
    if cursor.accept("keyword", "not"):
        return Not(_parse_unary(cursor))
    if cursor.accept("keyword", "true"):
        return TRUE
    if cursor.accept("keyword", "false"):
        return FALSE
    quantifier = cursor.accept("keyword", "exists") or cursor.accept(
        "keyword", "forall"
    )
    if quantifier:
        names = [cursor.expect("ident")[1]]
        while cursor.accept("punct", ","):
            names.append(cursor.expect("ident")[1])
        body = _parse_unary(cursor)
        node = Exists if quantifier[1] == "exists" else ForAll
        return node(tuple(Var(n) for n in names), body)
    # a '(' always opens a subformula: linear expressions are paren-free
    if cursor.accept("punct", "("):
        inner = _parse_iff(cursor)
        cursor.expect("punct", ")")
        return inner
    return _parse_atom(cursor)


# --------------------------------------------------------------------- atoms


def _parse_atom(cursor: _Cursor) -> Formula:
    token = cursor.peek()
    if token[0] == "ident" and cursor.tokens[cursor.index + 1][1] == "(":
        name = cursor.advance()[1]
        cursor.expect("punct", "(")
        args: List[Term] = []
        if not cursor.accept("punct", ")"):
            args.append(_parse_arg(cursor))
            while cursor.accept("punct", ","):
                args.append(_parse_arg(cursor))
            cursor.expect("punct", ")")
        return RelationAtom(name, tuple(args))
    left = _parse_lexpr(cursor)
    op_token = cursor.expect("op")
    right = _parse_lexpr(cursor)
    return _make_comparison(left, op_token[1], right, op_token[2])


def _parse_arg(cursor: _Cursor) -> Term:
    token = cursor.peek()
    if token[0] == "ident":
        cursor.advance()
        return Var(token[1])
    if token[0] == "number":
        cursor.advance()
        return Const(Fraction(token[1]))
    raise ParseError(f"expected a term at position {token[2]}")


def _make_comparison(left: LinExpr, op: str, right: LinExpr, position: int) -> Formula:
    diff = left - right
    if op == "<":
        made = linatom(diff, LinOp.LT)
    elif op == "<=":
        made = linatom(diff, LinOp.LE)
    elif op == "=":
        made = linatom(diff, LinOp.EQ)
    elif op == ">":
        made = linatom(right - left, LinOp.LT)
    elif op == ">=":
        made = linatom(right - left, LinOp.LE)
    elif op == "!=":
        parts = lin_ne(left, right)
        if parts and isinstance(parts[0], bool):  # pragma: no cover - ground
            return TRUE if parts[0] else FALSE
        return disj(*(Constraint(p) for p in parts)) if parts else FALSE
    else:  # pragma: no cover - lexer emits only the above
        raise ParseError(f"unknown comparison {op!r} at position {position}")
    if isinstance(made, bool):
        return TRUE if made else FALSE
    return Constraint(made)


# --------------------------------------------------------- linear expressions


def _parse_lexpr(cursor: _Cursor) -> LinExpr:
    negative = bool(cursor.accept("arith", "-"))
    expr = _parse_lterm(cursor)
    if negative:
        expr = expr.scale(Fraction(-1))
    while True:
        if cursor.accept("arith", "+"):
            expr = expr + _parse_lterm(cursor)
        elif cursor.accept("arith", "-"):
            expr = expr - _parse_lterm(cursor)
        else:
            return expr


def _parse_lterm(cursor: _Cursor) -> LinExpr:
    token = cursor.peek()
    if token[0] == "number":
        cursor.advance()
        coefficient = Fraction(token[1])
        if cursor.accept("arith", "*"):
            name = cursor.expect("ident")[1]
            return LinExpr.make({name: coefficient})
        return LinExpr.of_const(coefficient)
    if token[0] == "ident":
        cursor.advance()
        return LinExpr.of_var(token[1])
    raise ParseError(
        f"expected a linear term at position {token[2]}, found {token[1]!r}"
    )
