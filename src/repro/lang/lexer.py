"""Tokenizer for the textual query language.

One lexer serves both surface syntaxes (FO formulas and Datalog
programs).  Tokens:

* identifiers  ``[A-Za-z_][A-Za-z0-9_]*`` (keywords carved out later);
* numbers      ``123``, ``-4``, ``7/2``, ``-22/7`` (exact rationals);
* comparison   ``< <= = != >= >``;
* arithmetic   ``+ * -`` (FO+ linear expressions; ``-`` doubles as the
  sign of a numeric literal where no left operand precedes it);
* punctuation  ``( ) , . :-`` and the quantifier dot;
* keywords     ``and or not exists forall true false``.

Whitespace separates; ``%`` starts a comment to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, List, Optional, Tuple

from repro.errors import ParseError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {"and", "or", "not", "exists", "forall", "true", "false", "implies", "iff"}
)

#: (kind, text, position); kinds: ident, keyword, number, op, punct, end
Token = Tuple[str, str, int]

_PUNCT = {"(", ")", ",", ".", ":-"}
_OPS = {"<", "<=", "=", "!=", ">=", ">"}
_ARITH = {"+", "*", "-"}


def tokenize(text: str) -> List[Token]:
    """Tokenize; raises :class:`ParseError` on junk."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c in " \t\r\n":
            i += 1
            continue
        if c == "%":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append((kind, word, i))
            i = j
            continue
        if c.isdigit() or (
            c == "-" and i + 1 < n and text[i + 1].isdigit() and _number_context(tokens)
        ):
            j = i + 1
            while j < n and text[j].isdigit():
                j += 1
            if j < n and text[j] == "/" and j + 1 < n and text[j + 1].isdigit():
                j += 1
                while j < n and text[j].isdigit():
                    j += 1
            tokens.append(("number", text[i:j], i))
            i = j
            continue
        if c == ":" and i + 1 < n and text[i + 1] == "-":
            tokens.append(("punct", ":-", i))
            i += 2
            continue
        two = text[i : i + 2]
        if two in _OPS:
            tokens.append(("op", two, i))
            i += 2
            continue
        if c in _OPS:
            tokens.append(("op", c, i))
            i += 1
            continue
        if c in _PUNCT:
            tokens.append(("punct", c, i))
            i += 1
            continue
        if c in _ARITH:
            tokens.append(("arith", c, i))
            i += 1
            continue
        raise ParseError(f"unexpected character {c!r} at position {i}")
    tokens.append(("end", "", n))
    return tokens


def _number_context(tokens: List[Token]) -> bool:
    """Is a leading '-' starting a negative number (not a binary minus)?

    The language has no arithmetic, so '-' only ever introduces a
    negative literal; it is valid after operators, commas, or opening
    parens.
    """
    if not tokens:
        return True
    kind, text, _ = tokens[-1]
    return kind in ("op", "keyword") or text in ("(", ",", ":-")
