"""Textual surface syntax: parse FO formulas and Datalog programs.

::

    from repro.lang import parse_formula, parse_program

    f = parse_formula("exists y (T(x, y) and y < 5)")
    p = parse_program("tc(x,y) :- e(x,y). tc(x,z) :- tc(x,y), e(y,z).")
"""

from repro.lang.formatter import format_formula, format_program, format_term
from repro.lang.lexer import tokenize
from repro.lang.linear_parser import parse_linear_expression, parse_linear_formula
from repro.lang.parser import parse_formula, parse_program, parse_term

__all__ = [
    "tokenize",
    "parse_formula",
    "parse_program",
    "parse_term",
    "format_formula",
    "format_program",
    "format_term",
    "parse_linear_expression",
    "parse_linear_formula",
]
