"""Seeded workload generators for tests, examples and benchmarks.

Every generator takes a :class:`random.Random` (or a seed) and produces
dense-order database content with exact rational constants; benchmark
series are reproducible by construction.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.atoms import le, lt
from repro.core.boxes import Box, BoxSet
from repro.core.database import Database
from repro.core.intervals import Interval, IntervalSet
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER

__all__ = [
    "rng_of",
    "random_interval_set",
    "random_interval_database",
    "random_box_database",
    "random_finite_graph",
    "path_graph",
    "cycle_graph",
    "disjoint_cycles",
    "point_set",
    "interval_chain",
    "interval_pairs_relation",
    "checkerboard_region",
    "staircase_region",
    "fragmented_interval_database",
    "deep_negation_formula",
    "alternating_quantifier_formula",
    "slow_tc_workload",
]


def rng_of(seed: Union[int, random.Random]) -> random.Random:
    """Coerce an int seed (or pass through a Random) to a Random."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def _random_fraction(rng: random.Random, lo: int, hi: int, denominator: int = 4) -> Fraction:
    return Fraction(rng.randint(lo * denominator, hi * denominator), denominator)


def random_interval_set(
    seed: Union[int, random.Random],
    count: int,
    span: int = 50,
    max_width: int = 5,
) -> IntervalSet:
    """A random union of ``count`` bounded intervals within ``[-span, span]``."""
    rng = rng_of(seed)
    intervals: List[Interval] = []
    for _ in range(count):
        lo = _random_fraction(rng, -span, span - max_width)
        width = _random_fraction(rng, 0, max_width)
        intervals.append(
            Interval.make(lo, lo + width, rng.random() < 0.5, rng.random() < 0.5)
        )
    return IntervalSet(intervals)


def random_interval_database(
    seed: Union[int, random.Random],
    count: int,
    name: str = "S",
    span: int = 50,
) -> Database:
    """A database with one unary relation of random intervals."""
    db = Database()
    db[name] = random_interval_set(seed, count, span).to_relation("x")
    return db


def random_box_database(
    seed: Union[int, random.Random],
    count: int,
    dimension: int = 2,
    name: str = "R",
    span: int = 20,
) -> Database:
    """A database with one k-ary relation of random boxes."""
    rng = rng_of(seed)
    boxes = []
    for _ in range(count):
        sides = []
        for _ in range(dimension):
            lo = _random_fraction(rng, -span, span - 4)
            width = _random_fraction(rng, 1, 4)
            sides.append(Interval.closed(lo, lo + width))
        boxes.append(Box(tuple(sides)))
    schema = tuple(f"x{i}" for i in range(dimension))
    db = Database()
    db[name] = BoxSet(boxes, dimension).to_relation(schema)
    return db


# ------------------------------------------------------------------- graphs


def _graph_database(
    vertices: Iterable[int], edges: Iterable[Tuple[int, int]],
    vertex_name: str = "V", edge_name: str = "E",
) -> Database:
    db = Database()
    vs = list(vertices)
    db[vertex_name] = (
        Relation.from_points(("x",), [(v,) for v in vs])
        if vs
        else Relation.empty(("x",))
    )
    es = list(edges)
    db[edge_name] = (
        Relation.from_points(("x", "y"), es) if es else Relation.empty(("x", "y"))
    )
    return db


def random_finite_graph(
    seed: Union[int, random.Random],
    vertex_count: int,
    edge_probability: float = 0.3,
) -> Database:
    """A random finite graph as equality-constraint relations V/1, E/2."""
    rng = rng_of(seed)
    edges = [
        (i, j)
        for i in range(vertex_count)
        for j in range(i + 1, vertex_count)
        if rng.random() < edge_probability
    ]
    return _graph_database(range(vertex_count), edges)


def path_graph(vertex_count: int) -> Database:
    """The path 0 - 1 - ... - (n-1): connected."""
    return _graph_database(
        range(vertex_count), [(i, i + 1) for i in range(vertex_count - 1)]
    )


def cycle_graph(vertex_count: int) -> Database:
    """A single cycle on n vertices: connected."""
    edges = [(i, (i + 1) % vertex_count) for i in range(vertex_count)]
    return _graph_database(range(vertex_count), edges)


def disjoint_cycles(half: int) -> Database:
    """Two disjoint cycles of ``half`` vertices each: disconnected.

    The classic contrast instance to :func:`cycle_graph` of size
    ``2 * half`` in connectivity lower-bound experiments.
    """
    first = [(i, (i + 1) % half) for i in range(half)]
    second = [(half + i, half + (i + 1) % half) for i in range(half)]
    return _graph_database(range(2 * half), first + second)


def point_set(count: int, name: str = "S", start: int = 0, step: int = 1) -> Database:
    """The finite unary relation {start, start+step, ...} of given size."""
    db = Database()
    points = [(start + i * step,) for i in range(count)]
    db[name] = (
        Relation.from_points(("x",), points) if points else Relation.empty(("x",))
    )
    return db


# ------------------------------------------------------------ interval chains


def interval_chain(
    count: int, overlap: bool = True, name: str = "S"
) -> Database:
    """``count`` unit intervals, adjacent ones overlapping (or separated).

    Overlapping: ``[2i, 2i + 3]`` -- a single connected blob.
    Separated:   ``[3i, 3i + 1]`` -- ``count`` components.
    """
    intervals = []
    for i in range(count):
        if overlap:
            intervals.append(Interval.closed(2 * i, 2 * i + 3))
        else:
            intervals.append(Interval.closed(3 * i, 3 * i + 1))
    db = Database()
    db[name] = IntervalSet(intervals).to_relation("x")
    return db


def interval_pairs_relation(
    seed: Union[int, random.Random], count: int, span: int = 30, name: str = "I"
) -> Database:
    """Closed intervals stored as a binary (lo, hi) point relation.

    The input shape of the interval-overlap reachability Datalog
    program (experiment E6).
    """
    rng = rng_of(seed)
    rows = []
    for _ in range(count):
        lo = rng.randint(-span, span - 3)
        width = rng.randint(1, 3)
        rows.append((lo, lo + width))
    db = Database()
    db[name] = Relation.from_points(("lo", "hi"), rows)
    return db


# ------------------------------------------------------------------- regions


def checkerboard_region(size: int, name: str = "R") -> Database:
    """Closed unit squares on the black cells of a size x size board.

    Diagonally adjacent closed squares share corners, so the black
    checkerboard is one connected region -- a stress case for the
    gluing-graph connectivity algorithm.
    """
    boxes = [
        Box.closed((i, i + 1), (j, j + 1))
        for i in range(size)
        for j in range(size)
        if (i + j) % 2 == 0
    ]
    db = Database()
    db[name] = BoxSet(boxes, 2).to_relation(("x0", "x1"))
    return db


def staircase_region(steps: int, gap: bool = False, name: str = "R") -> Database:
    """A staircase of closed squares; with ``gap`` the middle step is
    removed, splitting the region into two components."""
    boxes = []
    middle = steps // 2
    for i in range(steps):
        if gap and i == middle:
            continue
        boxes.append(Box.closed((i, i + 1), (i, i + 1)))
    db = Database()
    db[name] = BoxSet(boxes, 2).to_relation(("x0", "x1"))
    return db


# -------------------------------------------------- adversarial workloads
#
# Inputs built to exhaust resources rather than to model anything: the
# dense-order complement distributes negation over a DNF (worst-case
# exponential, Section 3), and naive fixpoints take as many rounds as
# the data is deep.  These are the test loads for the budget runtime
# (experiment E13): small enough to start, hopeless enough to trip any
# finite budget when scaled up.


def fragmented_interval_database(count: int, name: str = "S") -> Database:
    """``count`` pairwise-disjoint open unit intervals ``(3i, 3i + 1)``.

    The complement-blowup adversary: negating the union distributes
    over ``count`` disjuncts before absorption prunes the cross
    products, so each :class:`~repro.core.formula.Not` over this
    relation does work exponential in ``count`` before simplification.
    """
    intervals = [Interval.open(3 * i, 3 * i + 1) for i in range(count)]
    db = Database()
    db[name] = IntervalSet(intervals).to_relation("x")
    return db


def deep_negation_formula(depth: int, name: str = "S"):
    """``not not ... not S(x)`` -- ``depth`` stacked complements.

    Logically trivial (the identity or one complement), but the
    evaluator cannot know that: every level materializes a full
    complement of the level below.  Pair with
    :func:`fragmented_interval_database` to make each level expensive.
    """
    from repro.core.formula import Not, rel

    f = rel(name, "x")
    for _ in range(depth):
        f = Not(f)
    return f


def alternating_quantifier_formula(depth: int, name: str = "E"):
    """A ``depth``-step path formula with alternating exists/forall.

    ``forall`` evaluates as ``not exists not``, so each universal level
    costs two complements on top of one quantifier elimination -- the
    deep-negation adversary in quantifier clothing.  The formula has
    one free variable ``v0`` and talks about a binary relation
    ``name``.
    """
    from repro.core.formula import Formula, exists, forall, rel

    if depth < 1:
        raise ValueError("depth must be >= 1")
    f: Formula = rel(name, f"v{depth - 1}", f"v{depth}")
    for i in range(depth, 0, -1):
        f = exists(f"v{i}", f) if (depth - i) % 2 == 0 else forall(f"v{i}", f)
        if i > 1:
            f = rel(name, f"v{i - 2}", f"v{i - 1}") & f
    return f


def slow_tc_workload(length: int) -> Tuple["object", Database]:
    """A (program, database) pair that converges only after ~``length``
    rounds: single-step transitive closure over a path of ``length``
    vertices.  The round-budget adversary -- any ``max_rounds`` below
    the path length cuts it off mid-closure.
    """
    from repro.datalog.ast import Program, pred, rule

    program = Program(
        [
            rule("tc", ["x", "y"], pred("E", "x", "y")),
            rule("tc", ["x", "z"], pred("tc", "x", "y"), pred("E", "y", "z")),
        ],
        edb={"E": 2},
    )
    return program, path_graph(length)
