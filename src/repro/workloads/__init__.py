"""Seeded workload generators."""

from repro.workloads.generators import (
    checkerboard_region,
    cycle_graph,
    disjoint_cycles,
    interval_chain,
    interval_pairs_relation,
    path_graph,
    point_set,
    random_box_database,
    random_finite_graph,
    random_interval_database,
    random_interval_set,
    rng_of,
    staircase_region,
)

__all__ = [
    "checkerboard_region",
    "cycle_graph",
    "disjoint_cycles",
    "interval_chain",
    "interval_pairs_relation",
    "path_graph",
    "point_set",
    "random_box_database",
    "random_finite_graph",
    "random_interval_database",
    "random_interval_set",
    "rng_of",
    "staircase_region",
]
