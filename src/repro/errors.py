"""Exception hierarchy for the repro package.

All errors raised deliberately by the library derive from
:class:`ReproError`, so callers can catch library failures without
masking programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation, tuple, or query was used with an incompatible schema."""


class TheoryError(ReproError):
    """A constraint atom is malformed or outside the supported theory."""


class EvaluationError(ReproError):
    """A query could not be evaluated against the given database."""


class ShardFailedError(EvaluationError):
    """A parallel shard exhausted every recovery path.

    Raised by the resilient dispatch loop
    (:mod:`repro.parallel.resilience`) when a shard failed all retries
    and — unless the policy said ``on_failure="fail"`` — its serial
    in-process quarantine re-execution failed too.  Carries enough
    structure for the CLI's exit-code contract (exit ``5``) and for
    post-mortems: the operation, the shard index, how many attempts
    were made, and the underlying cause.
    """

    def __init__(self, message: str, *, op: str = "", shard: int = -1,
                 attempts: int = 0, cause: BaseException = None) -> None:
        super().__init__(message)
        self.op = op
        self.shard = shard
        self.attempts = attempts
        self.cause = cause

    def diagnostics(self) -> dict:
        """Structured failure facts (mirrors ``BudgetExceeded``)."""
        return {
            "op": self.op,
            "shard": self.shard,
            "attempts": self.attempts,
            "cause": type(self.cause).__name__ if self.cause else None,
        }


class ParseError(ReproError):
    """A textual query or program could not be parsed."""


class DatalogError(ReproError):
    """A Datalog program is ill-formed (arity mismatch, unknown predicate...)."""


class TypeCheckError(ReproError):
    """A complex-object value does not match its declared c-type."""


class EncodingError(ReproError):
    """A database instance could not be encoded or decoded."""
