"""Exception hierarchy for the repro package.

All errors raised deliberately by the library derive from
:class:`ReproError`, so callers can catch library failures without
masking programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation, tuple, or query was used with an incompatible schema."""


class TheoryError(ReproError):
    """A constraint atom is malformed or outside the supported theory."""


class EvaluationError(ReproError):
    """A query could not be evaluated against the given database."""


class ParseError(ReproError):
    """A textual query or program could not be parsed."""


class DatalogError(ReproError):
    """A Datalog program is ill-formed (arity mismatch, unknown predicate...)."""


class TypeCheckError(ReproError):
    """A complex-object value does not match its declared c-type."""


class EncodingError(ReproError):
    """A database instance could not be encoded or decoded."""
