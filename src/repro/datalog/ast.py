"""Datalog with negation and constraints: abstract syntax (Section 4).

The paper's Datalog(not) programs are sets of rules::

    H(x, z) :- R(x, y), not S(y), y < z, z <= 5

whose bodies mix positive and negated predicate literals with
constraint atoms of the underlying theory.  Under the *inflationary*
semantics (facts derived in a round are added to the previous state,
never retracted), every program over dense-order constraints terminates
and has PTIME data complexity; Theorem 4.4 shows the converse -- every
PTIME query is expressible -- making Datalog(not) an exact
characterization of PTIME over dense-order databases.

This module defines the program syntax and static checks; evaluation
lives in :mod:`repro.datalog.engine` (constraint relations) and
:mod:`repro.datalog.finite` (classical finite relations, needed by the
Theorem 4.4 capture pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.terms import Const, Term, TermLike, Var, as_term
from repro.errors import DatalogError

__all__ = [
    "PredicateLiteral",
    "ConstraintLiteral",
    "Literal",
    "Rule",
    "Program",
    "pred",
    "negated",
    "cons",
    "rule",
]


@dataclass(frozen=True)
class PredicateLiteral:
    """``R(t1, ..., tk)`` or ``not R(t1, ..., tk)`` in a rule body."""

    name: str
    args: Tuple[Term, ...]
    negated: bool = False

    @property
    def arity(self) -> int:
        return len(self.args)

    def variables(self) -> FrozenSet[Var]:
        return frozenset(t for t in self.args if isinstance(t, Var))

    def __str__(self) -> str:
        prefix = "not " if self.negated else ""
        return f"{prefix}{self.name}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class ConstraintLiteral:
    """A constraint atom of the underlying theory in a rule body."""

    atom: object  # dense-order Atom or LinAtom (theory protocol)

    def variables(self) -> FrozenSet[Var]:
        return self.atom.variables

    def __str__(self) -> str:
        return str(self.atom)


Literal = Union[PredicateLiteral, ConstraintLiteral]


@dataclass(frozen=True)
class Rule:
    """``head(vars) :- body``.  Head arguments must be variables."""

    head_name: str
    head_args: Tuple[Var, ...]
    body: Tuple[Literal, ...]

    def __post_init__(self) -> None:
        for arg in self.head_args:
            if not isinstance(arg, Var):
                raise DatalogError(
                    f"head argument {arg} of {self.head_name} is not a variable; "
                    "bind constants with an equality constraint in the body"
                )
        if len(set(self.head_args)) != len(self.head_args):
            raise DatalogError(
                f"repeated head variable in {self.head_name}; "
                "use distinct variables and equate them in the body"
            )

    def body_variables(self) -> FrozenSet[Var]:
        out: set = set()
        for literal in self.body:
            out |= literal.variables()
        return frozenset(out)

    def predicates(self) -> FrozenSet[str]:
        return frozenset(
            l.name for l in self.body if isinstance(l, PredicateLiteral)
        )

    def __str__(self) -> str:
        head = f"{self.head_name}({', '.join(v.name for v in self.head_args)})"
        if not self.body:
            return f"{head}."
        return f"{head} :- {', '.join(map(str, self.body))}."


class Program:
    """A Datalog(not) program: rules plus declared EDB predicates.

    ``idb_arities`` is inferred from rule heads; a predicate may not be
    both EDB (stored input) and IDB (derived).
    """

    def __init__(self, rules: Iterable[Rule], edb: Optional[Dict[str, int]] = None) -> None:
        self.rules: Tuple[Rule, ...] = tuple(rules)
        self.edb: Dict[str, int] = dict(edb or {})
        self.idb: Dict[str, int] = {}
        for r in self.rules:
            arity = len(r.head_args)
            known = self.idb.get(r.head_name)
            if known is not None and known != arity:
                raise DatalogError(
                    f"predicate {r.head_name} used with arities {known} and {arity}"
                )
            self.idb[r.head_name] = arity
        overlap = set(self.idb) & set(self.edb)
        if overlap:
            raise DatalogError(f"predicates both EDB and IDB: {sorted(overlap)}")
        self._check_bodies()

    def _check_bodies(self) -> None:
        for r in self.rules:
            for literal in r.body:
                if not isinstance(literal, PredicateLiteral):
                    continue
                if literal.name in self.idb:
                    expected = self.idb[literal.name]
                elif literal.name in self.edb:
                    expected = self.edb[literal.name]
                else:
                    raise DatalogError(
                        f"rule {r} uses undeclared predicate {literal.name!r}; "
                        "declare it in edb= or define it with a rule"
                    )
                if literal.arity != expected:
                    raise DatalogError(
                        f"predicate {literal.name} has arity {expected}, "
                        f"used with {literal.arity} in {r}"
                    )

    def predicates(self) -> FrozenSet[str]:
        return frozenset(self.idb) | frozenset(self.edb)

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self.rules)

    def __repr__(self) -> str:
        return f"<Program {len(self.rules)} rule(s), idb={sorted(self.idb)}>"


# ------------------------------------------------------------------ sugar


def pred(name: str, *args: TermLike) -> PredicateLiteral:
    """Positive body literal ``name(args...)``."""
    return PredicateLiteral(name, tuple(as_term(a) for a in args))


def negated(name: str, *args: TermLike) -> PredicateLiteral:
    """Negated body literal ``not name(args...)``."""
    return PredicateLiteral(name, tuple(as_term(a) for a in args), negated=True)


def cons(atom: object) -> ConstraintLiteral:
    """Constraint body literal (a theory atom)."""
    if isinstance(atom, bool):
        raise DatalogError("trivial constraint folded to a boolean; drop it")
    return ConstraintLiteral(atom)


def rule(head_name: str, head_args: Sequence[Union[str, Var]], *body: Literal) -> Rule:
    """Build a rule; string head args become variables."""
    args = tuple(Var(a) if isinstance(a, str) else a for a in head_args)
    return Rule(head_name, args, tuple(body))
