"""Semi-naive evaluation of Datalog(not) over constraint relations.

The naive engine (:mod:`repro.datalog.engine`) re-derives every fact
every round.  Semi-naive evaluation is the classical fix: a rule can
only produce *new* facts in round ``i`` if at least one of its positive
IDB literals is matched against a tuple first derived in round
``i - 1``, so each rule is evaluated once per positive-IDB position
with that position restricted to the previous round's *delta*.

Constraint-database twist: "new" is a semantic notion here.  Deltas are
computed per generalized tuple (tuples whose canonical form was not in
the previous representation), which over-approximates semantic novelty
-- sound, still a large win on recursion like transitive closure.

Rules with negated IDB literals (or no positive IDB literal at all, or
head variables unconstrained by the body) fall back to full evaluation
each round: inflationary negation is non-monotone, so delta reasoning
does not apply to them.

``evaluate_seminaive`` is a drop-in replacement for
:func:`~repro.datalog.engine.evaluate_program`, equivalence-tested
against it on random programs.
"""

from __future__ import annotations

import contextlib
from typing import Dict, List, Optional, Tuple

from repro.core.database import Database
from repro.core.evaluator import evaluate
from repro.core.relation import Relation
from repro.core.theory import ConstraintTheory
from repro.datalog.ast import ConstraintLiteral, PredicateLiteral, Program, Rule
from repro.datalog.engine import (
    FixpointResult,
    _derive,
    body_formula,
    check_on_budget,
    head_schema,
    resolve_guard,
)
from repro.errors import DatalogError
from repro.obs.trace import active_tracer, span
from repro.runtime.budget import Budget, BudgetExceeded
from repro.runtime.faults import fault_point
from repro.runtime.guard import EvaluationGuard, round_limit_error

__all__ = ["evaluate_seminaive"]


def _positive_idb_positions(r: Rule, program: Program) -> List[int]:
    out = []
    for i, literal in enumerate(r.body):
        if (
            isinstance(literal, PredicateLiteral)
            and not literal.negated
            and literal.name in program.idb
        ):
            out.append(i)
    return out


def _uses_negated_idb(r: Rule, program: Program) -> bool:
    return any(
        isinstance(l, PredicateLiteral) and l.negated and l.name in program.idb
        for l in r.body
    )


def _derive_with_delta(
    r: Rule,
    position: int,
    state: Database,
    deltas: Dict[str, Relation],
    theory: ConstraintTheory,
) -> Relation:
    """Evaluate one rule with the given body position bound to its delta."""
    literal = r.body[position]
    delta = deltas[literal.name]
    if delta.is_empty():
        return Relation.empty(head_schema(len(r.head_args)), theory)
    scratch = state.copy()
    delta_name = f"__delta_{literal.name}"
    scratch[delta_name] = delta
    rewritten_body = tuple(
        PredicateLiteral(delta_name, literal.args, negated=False)
        if i == position
        else l
        for i, l in enumerate(r.body)
    )
    rewritten = Rule(r.head_name, r.head_args, rewritten_body)
    return _derive(rewritten, scratch, theory)


def evaluate_seminaive(
    program: Program,
    database: Database,
    max_rounds: Optional[int] = None,
    *,
    budget: Optional[Budget] = None,
    guard: Optional[EvaluationGuard] = None,
    on_budget: str = "raise",
    context=None,
) -> FixpointResult:
    """Inflationary fixpoint via semi-naive evaluation.

    Same result as :func:`~repro.datalog.engine.evaluate_program`
    (the fixpoint is unique); round counts may differ by the usual
    off-by-one of delta initialization.  Budgets behave identically:
    ``on_budget="raise"`` raises on exhaustion, ``"partial"`` returns
    the truncated state tagged with what was cut.  ``context``
    optionally activates an
    :class:`~repro.parallel.context.ExecutionContext` for the run.
    """
    check_on_budget(on_budget)
    guard = resolve_guard(guard, budget)
    theory = database.theory
    for name, arity in program.edb.items():
        if name not in database:
            raise DatalogError(f"EDB predicate {name!r} missing from the database")
        if database.arity(name) != arity:
            raise DatalogError(
                f"EDB predicate {name!r} has arity {database.arity(name)}, "
                f"program declares {arity}"
            )
    state = database.copy()
    for name, arity in program.idb.items():
        if name in state:
            raise DatalogError(f"IDB predicate {name!r} already stored in the database")
        state[name] = Relation.empty(head_schema(arity), theory)

    delta_rules: Dict[Rule, List[int]] = {}
    full_rules: List[Rule] = []
    for r in program.rules:
        positions = _positive_idb_positions(r, program)
        if positions and not _uses_negated_idb(r, program):
            delta_rules[r] = positions
        else:
            full_rules.append(r)

    deltas: Dict[str, Relation] = {
        name: Relation.empty(head_schema(arity), theory)
        for name, arity in program.idb.items()
    }
    first_round = True
    rounds = 0
    with contextlib.nullcontext() if context is None else context, \
            contextlib.nullcontext() if guard is None else guard:
        with span(
            "datalog.seminaive",
            rules=len(program.rules),
            delta_rules=len(delta_rules),
        ):
            while True:
                with span("datalog.seminaive.round", round=rounds + 1) as sp:
                    try:
                        if guard is not None:
                            guard.on_round("seminaive.round")
                        fault_point("seminaive.round")
                        additions: Dict[str, List[Relation]] = {
                            name: [] for name in program.idb
                        }
                        for r in full_rules:
                            additions[r.head_name].append(_derive(r, state, theory))
                        for r, positions in delta_rules.items():
                            if first_round:
                                # no deltas yet: seed with a full evaluation
                                additions[r.head_name].append(_derive(r, state, theory))
                            else:
                                for position in positions:
                                    additions[r.head_name].append(
                                        _derive_with_delta(
                                            r, position, state, deltas, theory
                                        )
                                    )
                        changed = False
                        new_deltas: Dict[str, Relation] = {}
                        for name in program.idb:
                            current = state[name]
                            merged = current
                            for piece in additions[name]:
                                merged = merged.union(piece)
                            merged = merged.simplify()
                            old_tuples = frozenset(current.tuples)
                            fresh = [t for t in merged.tuples if t not in old_tuples]
                            new_deltas[name] = Relation._trusted(
                                theory, merged.schema, fresh
                            )
                            # merged and old differ iff something fresh
                            # appeared or simplify absorbed an old tuple
                            if fresh or len(merged.tuples) != len(old_tuples):
                                changed = True
                            state[name] = merged
                        if sp is not None:
                            delta = sum(len(d.tuples) for d in new_deltas.values())
                            sp.attrs["delta_tuples"] = delta
                            tracer = active_tracer()
                            tracer.metrics.count("datalog.seminaive.rounds")
                            tracer.metrics.observe(
                                "datalog.seminaive.delta_tuples", delta
                            )
                            tracer.log(
                                "datalog.seminaive.round",
                                round=rounds + 1,
                                delta_tuples=delta,
                                changed=changed,
                            )
                    except BudgetExceeded as error:
                        if on_budget == "partial":
                            return FixpointResult(state, rounds, False, cut=str(error))
                        raise
                deltas = new_deltas
                first_round = False
                rounds += 1
                if not changed:
                    return FixpointResult(state, rounds, True)
                if max_rounds is not None and rounds >= max_rounds:
                    error = round_limit_error(
                        "seminaive.round", max_rounds, rounds, guard
                    )
                    if on_budget == "partial":
                        return FixpointResult(state, rounds, False, cut=str(error))
                    raise error
