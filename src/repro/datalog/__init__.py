"""Inflationary Datalog with negation (paper Section 4, Theorem 4.4).

Two engines over one syntax (:mod:`repro.datalog.ast`):

* :func:`evaluate_program` -- closed-form evaluation over generalized
  (constraint) relations; the language that captures exactly PTIME over
  dense-order databases;
* :func:`evaluate_finite` -- classical evaluation over finite
  relations, used by the Theorem 4.4 capture pipeline.

Example (transitive closure over a constraint graph)::

    from repro.datalog import Program, rule, pred, evaluate_program

    program = Program(
        [
            rule("tc", ["x", "y"], pred("edge", "x", "y")),
            rule("tc", ["x", "z"], pred("tc", "x", "y"), pred("edge", "y", "z")),
        ],
        edb={"edge": 2},
    )
    result = evaluate_program(program, db)
    closure = result["tc"]
"""

from repro.datalog.ast import (
    ConstraintLiteral,
    Literal,
    PredicateLiteral,
    Program,
    Rule,
    cons,
    negated,
    pred,
    rule,
)
from repro.datalog.engine import (
    FixpointResult,
    body_formula,
    evaluate_program,
    head_schema,
)
from repro.datalog.finite import (
    FiniteFixpointResult,
    FiniteInstance,
    evaluate_finite,
)
from repro.datalog.seminaive import evaluate_seminaive
from repro.datalog.stratified import evaluate_stratified, is_stratifiable, stratify

__all__ = [
    "ConstraintLiteral",
    "Literal",
    "PredicateLiteral",
    "Program",
    "Rule",
    "cons",
    "negated",
    "pred",
    "rule",
    "FixpointResult",
    "body_formula",
    "evaluate_program",
    "head_schema",
    "FiniteFixpointResult",
    "FiniteInstance",
    "evaluate_finite",
    "evaluate_seminaive",
    "evaluate_stratified",
    "is_stratifiable",
    "stratify",
]
