"""Inflationary Datalog(not) over classical finite relations.

The Theorem 4.4 capture pipeline (:mod:`repro.encoding.ptime`) encodes
a dense-order instance as a *finite* structure over consecutive
integers and then runs an ordinary inflationary Datalog(not) program on
it -- [Var82, Imm86]-style: with a total order available, inflationary
Datalog(not) expresses exactly the PTIME queries on finite structures.

This engine evaluates the same :class:`~repro.datalog.ast.Program`
syntax over finite relations (sets of tuples of rationals/integers).
Constraint literals act as filters; negated literals require all their
variables bound by positive literals or constants (checked statically),
because negation over an infinite domain would otherwise be unsafe.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.terms import Const, Term, Var, as_fraction
from repro.datalog.ast import ConstraintLiteral, PredicateLiteral, Program, Rule
from repro.errors import DatalogError
from repro.obs.trace import active_tracer, span

__all__ = ["FiniteInstance", "FiniteFixpointResult", "evaluate_finite"]

Row = Tuple[Fraction, ...]


class FiniteInstance:
    """Named finite relations: each a set of equal-length tuples."""

    def __init__(self, relations: Optional[Mapping[str, Iterable[Iterable]]] = None) -> None:
        self._relations: Dict[str, Set[Row]] = {}
        self._arities: Dict[str, int] = {}
        if relations:
            for name, rows in relations.items():
                self.add_relation(name, rows)

    def add_relation(self, name: str, rows: Iterable[Iterable], arity: Optional[int] = None) -> None:
        frozen: Set[Row] = set()
        for row in rows:
            tup = tuple(as_fraction(v) for v in row)
            frozen.add(tup)
        if frozen:
            widths = {len(r) for r in frozen}
            if len(widths) != 1:
                raise DatalogError(f"mixed arities in finite relation {name!r}")
            arity = widths.pop() if arity is None else arity
        if arity is None:
            raise DatalogError(f"empty finite relation {name!r} needs an explicit arity")
        self._relations[name] = frozen
        self._arities[name] = arity

    def __getitem__(self, name: str) -> Set[Row]:
        try:
            return self._relations[name]
        except KeyError:
            raise DatalogError(f"unknown finite relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def arity(self, name: str) -> int:
        return self._arities[name]

    def names(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    def active_domain(self) -> FrozenSet[Fraction]:
        out: Set[Fraction] = set()
        for rows in self._relations.values():
            for row in rows:
                out |= set(row)
        return frozenset(out)

    def copy(self) -> "FiniteInstance":
        clone = FiniteInstance()
        for name, rows in self._relations.items():
            clone._relations[name] = set(rows)
            clone._arities[name] = self._arities[name]
        return clone

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}/{a}" for n, a in self._arities.items())
        return f"<FiniteInstance [{parts}]>"


@dataclass
class FiniteFixpointResult:
    instance: FiniteInstance
    rounds: int
    reached_fixpoint: bool

    def __getitem__(self, name: str) -> Set[Row]:
        return self.instance[name]


def _check_safety(program: Program) -> None:
    """Every rule variable must be bound by some positive literal.

    Negation and constraints over the infinite domain Q are unsafe
    otherwise.  (The constraint engine in :mod:`repro.datalog.engine`
    has no such restriction -- unbounded results stay representable.)
    """
    for r in program.rules:
        bound: Set[Var] = set()
        for literal in r.body:
            if isinstance(literal, PredicateLiteral) and not literal.negated:
                bound |= literal.variables()
        unbound = (set(r.head_args) | r.body_variables()) - bound
        if unbound:
            names = ", ".join(sorted(v.name for v in unbound))
            raise DatalogError(
                f"unsafe rule {r}: variables not bound by a positive literal: {names}"
            )


def _match(
    args: Tuple[Term, ...], row: Row, env: Dict[Var, Fraction]
) -> Optional[Dict[Var, Fraction]]:
    """Extend ``env`` so that ``args`` matches ``row``; None on clash."""
    out = dict(env)
    for arg, value in zip(args, row):
        if isinstance(arg, Const):
            if arg.value != value:
                return None
        else:
            seen = out.get(arg)
            if seen is None:
                out[arg] = value
            elif seen != value:
                return None
    return out


def _ground(args: Tuple[Term, ...], env: Mapping[Var, Fraction]) -> Row:
    out = []
    for arg in args:
        if isinstance(arg, Const):
            out.append(arg.value)
        else:
            out.append(env[arg])
    return tuple(out)


def _split_body(r: Rule) -> Tuple[List[PredicateLiteral], List]:
    """Positive predicate literals vs. filters (negations, constraints)."""
    positives = [
        l for l in r.body if isinstance(l, PredicateLiteral) and not l.negated
    ]
    checks = [l for l in r.body if not (isinstance(l, PredicateLiteral) and not l.negated)]
    return positives, checks


def _derive_rule(
    r: Rule,
    state: FiniteInstance,
    split: Optional[Tuple[List[PredicateLiteral], List]] = None,
) -> Set[Row]:
    positives, checks = _split_body(r) if split is None else split

    derived: Set[Row] = set()
    envs: List[Dict[Var, Fraction]] = [{}]
    for literal in positives:
        rows = state[literal.name]
        next_envs: List[Dict[Var, Fraction]] = []
        for env in envs:
            for row in rows:
                extended = _match(literal.args, row, env)
                if extended is not None:
                    next_envs.append(extended)
        envs = next_envs
        if not envs:
            return derived
    for env in envs:
        ok = True
        for literal in checks:
            if isinstance(literal, PredicateLiteral):  # negated
                if _ground(literal.args, env) in state[literal.name]:
                    ok = False
                    break
            else:
                assert isinstance(literal, ConstraintLiteral)
                if not literal.atom.evaluate(env):
                    ok = False
                    break
        if ok:
            derived.add(_ground(r.head_args, env))
    return derived


def evaluate_finite(
    program: Program,
    instance: FiniteInstance,
    max_rounds: Optional[int] = None,
    *,
    on_budget: str = "raise",
) -> FiniteFixpointResult:
    """Inflationary fixpoint of ``program`` over a finite instance.

    Non-convergence within ``max_rounds`` is reported like every other
    fixpoint engine: raise
    :class:`~repro.runtime.budget.RoundLimitExceeded` by default, or
    return a truncated (sound, possibly incomplete) result under
    ``on_budget="partial"``.
    """
    from repro.datalog.engine import check_on_budget
    from repro.runtime.guard import round_limit_error

    check_on_budget(on_budget)
    _check_safety(program)
    for name, arity in program.edb.items():
        if name not in instance:
            raise DatalogError(f"EDB predicate {name!r} missing from the instance")
        if instance.arity(name) != arity:
            raise DatalogError(
                f"EDB predicate {name!r} has arity {instance.arity(name)}, "
                f"program declares {arity}"
            )
    state = instance.copy()
    for name, arity in program.idb.items():
        if name in state:
            raise DatalogError(f"IDB predicate {name!r} already stored")
        state.add_relation(name, [], arity=arity)

    rounds = 0
    # the body split is static: compute it once per rule, not per round
    splits = [(r, _split_body(r)) for r in program.rules]
    with span("datalog.finite", rules=len(program.rules), idb=len(program.idb)):
        while True:
            rounds += 1
            with span("datalog.finite.round", round=rounds) as sp:
                additions: Dict[str, Set[Row]] = {}
                for r, split in splits:
                    new_rows = _derive_rule(r, state, split)
                    additions.setdefault(r.head_name, set()).update(new_rows)
                changed = False
                delta = 0
                for name, rows in additions.items():
                    before = state[name]
                    if not rows <= before:
                        changed = True
                        if sp is not None:
                            delta += len(rows - before)
                        before |= rows
                if sp is not None:
                    sp.attrs["delta_tuples"] = delta
                    tracer = active_tracer()
                    tracer.metrics.count("datalog.finite.rounds")
                    tracer.metrics.observe("datalog.finite.delta_tuples", delta)
                    tracer.log(
                        "datalog.finite.round",
                        round=rounds,
                        delta_tuples=delta,
                        changed=changed,
                    )
            if not changed:
                return FiniteFixpointResult(state, rounds, True)
            if max_rounds is not None and rounds >= max_rounds:
                if on_budget == "partial":
                    return FiniteFixpointResult(state, rounds, False)
                raise round_limit_error("finite.round", max_rounds, rounds)
