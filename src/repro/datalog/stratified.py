"""Stratified Datalog(not): the classical alternative semantics.

The paper evaluates *inflationary* Datalog(not) (Theorem 4.4) and notes
in Section 6 that over discrete gap-orders even *stratified* Datalog
can express every Turing-computable function [Rev93] -- so the choice
of semantics matters.  This module implements the stratified semantics
over dense-order constraint relations for comparison:

* a program is *stratifiable* when no predicate depends negatively on
  itself through a cycle; :func:`stratify` computes the strata
  (Tarjan-style SCC condensation of the dependency graph);
* each stratum is evaluated to its *naive least fixpoint* with all
  negated predicates fully computed in earlier strata -- so negation is
  exact, no staging tricks needed (contrast the ``stage2`` guards the
  inflationary programs in :mod:`repro.encoding.ptime` must use);
* for stratifiable programs both semantics agree on negation-free
  programs, and stratified evaluation gives the intended model where
  inflationary programs would need guards (tested).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.database import Database
from repro.core.relation import Relation
from repro.datalog.ast import ConstraintLiteral, PredicateLiteral, Program, Rule
from repro.datalog.engine import (
    FixpointResult,
    _derive,
    check_on_budget,
    head_schema,
    resolve_guard,
)
from repro.errors import DatalogError
from repro.obs.trace import active_tracer, span
from repro.runtime.budget import Budget, BudgetExceeded
from repro.runtime.faults import fault_point
from repro.runtime.guard import EvaluationGuard, round_limit_error

__all__ = ["stratify", "is_stratifiable", "evaluate_stratified"]


def _dependencies(program: Program) -> Dict[str, Set[Tuple[str, bool]]]:
    """IDB dependency edges: head -> {(body predicate, negated?)}."""
    out: Dict[str, Set[Tuple[str, bool]]] = {name: set() for name in program.idb}
    for r in program.rules:
        for literal in r.body:
            if isinstance(literal, PredicateLiteral) and literal.name in program.idb:
                out[r.head_name].add((literal.name, literal.negated))
    return out


def stratify(program: Program) -> List[List[str]]:
    """Partition the IDB predicates into strata (lowest first).

    Raises :class:`DatalogError` when a predicate depends negatively on
    itself through a cycle (not stratifiable).
    """
    deps = _dependencies(program)
    # longest-path style stratum assignment: stratum(p) >= stratum(q) for
    # positive edges p->q, and > for negative ones
    stratum: Dict[str, int] = {name: 0 for name in program.idb}
    n = len(program.idb)
    for _ in range(n * n + 1):
        changed = False
        for head, edges in deps.items():
            for body, negated in edges:
                needed = stratum[body] + (1 if negated else 0)
                if stratum[head] < needed:
                    stratum[head] = needed
                    if stratum[head] > n:
                        raise DatalogError(
                            f"program is not stratifiable: {head} depends "
                            "negatively on itself through a cycle"
                        )
                    changed = True
        if not changed:
            break
    layers: Dict[int, List[str]] = {}
    for name, level in stratum.items():
        layers.setdefault(level, []).append(name)
    return [sorted(layers[level]) for level in sorted(layers)]


def is_stratifiable(program: Program) -> bool:
    """Does the program admit a stratification?"""
    try:
        stratify(program)
        return True
    except DatalogError:
        return False


def evaluate_stratified(
    program: Program,
    database: Database,
    max_rounds: Optional[int] = None,
    *,
    budget: Optional[Budget] = None,
    guard: Optional[EvaluationGuard] = None,
    on_budget: str = "raise",
) -> FixpointResult:
    """Evaluate under the stratified semantics (perfect model).

    Strata are computed once; within a stratum the rules iterate to a
    naive least fixpoint, with predicates of earlier strata (and the
    EDB) fixed.  Negated literals only ever refer to *completed*
    relations, so no inflationary staging is required.

    Budgets behave as in :func:`~repro.datalog.engine.evaluate_program`;
    a partial result stops at the stratum the budget cut (later strata
    would negate incomplete relations, which is unsound, so they are
    not evaluated at all).
    """
    check_on_budget(on_budget)
    guard = resolve_guard(guard, budget)
    theory = database.theory
    strata = stratify(program)
    for name, arity in program.edb.items():
        if name not in database:
            raise DatalogError(f"EDB predicate {name!r} missing from the database")
        if database.arity(name) != arity:
            raise DatalogError(
                f"EDB predicate {name!r} has arity {database.arity(name)}, "
                f"program declares {arity}"
            )
    state = database.copy()
    for name, arity in program.idb.items():
        if name in state:
            raise DatalogError(f"IDB predicate {name!r} already stored")
        state[name] = Relation.empty(head_schema(arity), theory)

    # validate the stratification property rule-by-rule: a negated IDB
    # literal must live in a strictly earlier stratum than the head
    level_of = {name: i for i, layer in enumerate(strata) for name in layer}
    for r in program.rules:
        for literal in r.body:
            if (
                isinstance(literal, PredicateLiteral)
                and literal.negated
                and literal.name in program.idb
                and level_of[literal.name] >= level_of[r.head_name]
            ):
                raise DatalogError(
                    f"rule {r} negates {literal.name} inside its own stratum"
                )

    total_rounds = 0
    # carried across rounds: one frozenset per changed head per round,
    # not a re-freeze of the whole previous state
    state_sets: Dict[str, frozenset] = {name: frozenset() for name in program.idb}
    with guard if guard is not None else contextlib.nullcontext():
        with span("datalog.stratified", strata=len(strata), rules=len(program.rules)):
            for layer in strata:
                rules = [r for r in program.rules if r.head_name in layer]
                while True:
                    with span(
                        "datalog.stratified.round",
                        round=total_rounds + 1,
                        stratum=level_of[layer[0]] if layer else 0,
                    ) as sp:
                        try:
                            if guard is not None:
                                guard.on_round("stratified.round")
                            fault_point("stratified.round")
                            changed = False
                            delta = 0
                            for r in rules:
                                derived = _derive(r, state, theory)
                                old = state[r.head_name]
                                grown = old.union(derived).simplify()
                                new_set = frozenset(grown.tuples)
                                old_set = state_sets[r.head_name]
                                if new_set != old_set:
                                    changed = True
                                    if sp is not None:
                                        delta += len(new_set - old_set)
                                    state[r.head_name] = grown
                                    state_sets[r.head_name] = new_set
                            if sp is not None:
                                sp.attrs["delta_tuples"] = delta
                                tracer = active_tracer()
                                tracer.metrics.count("datalog.stratified.rounds")
                                tracer.metrics.observe(
                                    "datalog.stratified.delta_tuples", delta
                                )
                                tracer.log(
                                    "datalog.stratified.round",
                                    round=total_rounds + 1,
                                    stratum=level_of[layer[0]] if layer else 0,
                                    delta_tuples=delta,
                                    changed=changed,
                                )
                        except BudgetExceeded as error:
                            if on_budget == "partial":
                                return FixpointResult(
                                    state, total_rounds, False, cut=str(error)
                                )
                            raise
                    total_rounds += 1
                    if not changed:
                        break
                    if max_rounds is not None and total_rounds >= max_rounds:
                        error = round_limit_error(
                            "stratified.round", max_rounds, total_rounds, guard
                        )
                        if on_budget == "partial":
                            return FixpointResult(
                                state, total_rounds, False, cut=str(error)
                            )
                        raise error
    return FixpointResult(state, total_rounds, True)
