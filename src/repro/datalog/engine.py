"""Inflationary evaluation of Datalog(not) over constraint relations.

[KKR90] showed (and the paper recalls in Section 4) that Datalog with
negation over dense-order constraints can be evaluated *bottom-up and
in closed form*: each IDB predicate's value after every round is again
a generalized relation.  Under the inflationary semantics the rounds
are monotone (facts are only added), and because quantifier elimination
over dense order never invents constants, the state space is bounded by
the finitely many pointsets definable over the input constants -- so
the iteration reaches a fixpoint and the data complexity is PTIME
(the easy half of Theorem 4.4).

Each rule body is translated to an FO formula (positive literal ->
relation atom, negated literal -> negated relation atom, constraint ->
constraint) and evaluated with the closed-form evaluator against the
*previous* round's state; the derived head facts of all rules are then
added at once.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.database import Database
from repro.core.evaluator import evaluate
from repro.core.formula import Constraint, Formula, Not, RelationAtom, conj
from repro.core.relation import Relation
from repro.core.theory import ConstraintTheory, DENSE_ORDER
from repro.datalog.ast import ConstraintLiteral, PredicateLiteral, Program, Rule
from repro.errors import DatalogError
from repro.obs.trace import active_tracer, span
from repro.runtime.budget import Budget, BudgetExceeded
from repro.runtime.faults import fault_point
from repro.runtime.guard import EvaluationGuard, round_limit_error

__all__ = [
    "FixpointResult",
    "evaluate_program",
    "body_formula",
    "head_schema",
    "resolve_guard",
    "check_on_budget",
]


def resolve_guard(
    guard: Optional[EvaluationGuard], budget: Optional[Budget]
) -> Optional[EvaluationGuard]:
    """One guard for an engine run: an explicit guard wins, a bare
    budget gets a fresh guard, neither means unguarded."""
    if guard is not None:
        return guard
    if budget is not None:
        return EvaluationGuard(budget)
    return None


def check_on_budget(on_budget: str) -> None:
    if on_budget not in ("raise", "partial"):
        raise ValueError(f"on_budget must be 'raise' or 'partial', got {on_budget!r}")


def head_schema(arity: int) -> Tuple[str, ...]:
    """Canonical column names for an IDB predicate of given arity."""
    return tuple(f"a{i}" for i in range(arity))


def body_formula(r: Rule) -> Formula:
    """The rule body as an FO formula over the rule's variables."""
    parts: List[Formula] = []
    for literal in r.body:
        if isinstance(literal, PredicateLiteral):
            atom = RelationAtom(literal.name, literal.args)
            parts.append(Not(atom) if literal.negated else atom)
        elif isinstance(literal, ConstraintLiteral):
            parts.append(Constraint(literal.atom))
        else:  # pragma: no cover - closed union
            raise DatalogError(f"unknown literal {literal!r}")
    return conj(*parts)


@dataclass
class FixpointResult:
    """Outcome of an inflationary evaluation.

    Under inflationary semantics every derived fact is final, so a
    truncated result is *sound but possibly incomplete*: all tuples
    present belong to the fixpoint.  ``cut`` says what the budget cut
    (``None`` for a complete run).
    """

    database: Database  #: EDB plus final IDB relations
    rounds: int  #: number of rounds until the fixpoint (>= 1)
    reached_fixpoint: bool  #: False only when a budget cut evaluation short
    cut: Optional[str] = None  #: what was cut, when reached_fixpoint is False

    def __getitem__(self, name: str) -> Relation:
        return self.database[name]


def _derive(
    r: Rule, state: Database, theory: ConstraintTheory, planner=None
) -> Relation:
    """Evaluate one rule against the current state; relation over head schema."""
    body = body_formula(r)
    if planner is not None:
        # rule bodies compile through the same plan IR as FO queries;
        # the planner caches the logical plan per body formula and
        # recomputes physical dispatch from current relation sizes
        derived = planner.run(body, state, theory)
    else:
        derived = evaluate(body, state, theory)
    head_names = [v.name for v in r.head_args]
    missing = [n for n in head_names if n not in derived.schema]
    if missing:
        # head variables unconstrained by the body range over all of Q
        derived = derived.extend(tuple(derived.schema) + tuple(missing))
    projected = derived.project(tuple(sorted(head_names)))
    target = tuple(head_names)  # distinct by Rule validation
    ordered = Relation._trusted(
        theory, target, [t.reorder(target) for t in projected.tuples]
    )
    return ordered.rename(dict(zip(head_names, head_schema(len(head_names)))))


def evaluate_program(
    program: Program,
    database: Database,
    max_rounds: Optional[int] = None,
    simplify_each_round: bool = True,
    *,
    budget: Optional[Budget] = None,
    guard: Optional[EvaluationGuard] = None,
    on_budget: str = "raise",
    context=None,
    planner=None,
) -> FixpointResult:
    """Run ``program`` to its inflationary fixpoint over ``database``.

    The returned database contains the EDB relations unchanged plus one
    relation per IDB predicate (canonical schema ``a0, a1, ...``).

    ``max_rounds`` bounds the iteration; ``budget``/``guard`` bound it
    further (deadline, tuple, round budgets — termination is otherwise
    guaranteed over dense-order constraints, but may take long).  When
    a bound trips, ``on_budget="raise"`` (the default) raises the
    :class:`~repro.runtime.budget.BudgetExceeded` subclass with
    diagnostics; ``on_budget="partial"`` returns the state of the last
    completed round as a partial :class:`FixpointResult` with
    ``reached_fixpoint=False`` and ``cut`` naming what was cut —
    sound under inflationary semantics (facts are only ever added).

    ``context`` optionally activates a
    :class:`~repro.parallel.context.ExecutionContext` for the whole
    run, sharding the expensive relation kernels of every round across
    its worker pool; serial evaluation stays the reference.

    ``planner`` optionally routes every rule-body evaluation through a
    :class:`~repro.core.physical.QueryPlanner` (compile → rule-engine
    rewrites → cost-modeled per-operator dispatch) instead of the
    direct evaluator.  Pass *either* ``context`` (global activation)
    or a planner holding the context (per-operator activation), not
    both — a globally active context would pre-empt the planner's
    per-node decisions.
    """
    check_on_budget(on_budget)
    guard = resolve_guard(guard, budget)
    theory = database.theory
    for name, arity in program.edb.items():
        if name not in database:
            raise DatalogError(f"EDB predicate {name!r} missing from the database")
        if database.arity(name) != arity:
            raise DatalogError(
                f"EDB predicate {name!r} has arity {database.arity(name)}, "
                f"program declares {arity}"
            )
    state = database.copy()
    for name, arity in program.idb.items():
        if name in state:
            raise DatalogError(f"IDB predicate {name!r} already stored in the database")
        state[name] = Relation.empty(head_schema(arity), theory)

    rounds = 0
    # per-predicate tuple sets, carried across rounds so the fixpoint
    # test builds one frozenset per changed predicate per round instead
    # of re-freezing the (large, unchanged) previous state every round
    state_sets: Dict[str, frozenset] = {name: frozenset() for name in program.idb}
    with contextlib.nullcontext() if context is None else context, \
            contextlib.nullcontext() if guard is None else guard:
        with span("datalog.naive", rules=len(program.rules), idb=len(program.idb)):
            while True:
                with span("datalog.naive.round", round=rounds + 1) as sp:
                    try:
                        if guard is not None:
                            guard.on_round("datalog.round")
                        fault_point("datalog.round")
                        new_values: Dict[str, Relation] = {}
                        for r in program.rules:
                            derived = _derive(r, state, theory, planner)
                            current = new_values.get(r.head_name, state[r.head_name])
                            new_values[r.head_name] = current.union(derived)
                        changed = False
                        delta = 0
                        for name, value in new_values.items():
                            if simplify_each_round:
                                value = value.simplify()
                            # Inflationary rounds only add tuples, and tuples are stored
                            # in canonical form over a constant set that never grows, so
                            # the *syntactic* tuple sets live in a finite space: comparing
                            # them is a sound and terminating fixpoint test (and avoids
                            # the exponential complement of a semantic equivalence check).
                            new_set = frozenset(value.tuples)
                            old_set = state_sets[name]
                            if new_set != old_set:
                                changed = True
                                if sp is not None:
                                    delta += len(new_set - old_set)
                                state_sets[name] = new_set
                            state[name] = value
                        if sp is not None:
                            sp.attrs["delta_tuples"] = delta
                            tracer = active_tracer()
                            tracer.metrics.count("datalog.naive.rounds")
                            tracer.metrics.observe("datalog.naive.delta_tuples", delta)
                            tracer.log(
                                "datalog.naive.round",
                                round=rounds + 1,
                                delta_tuples=delta,
                                changed=changed,
                            )
                    except BudgetExceeded as error:
                        if on_budget == "partial":
                            return FixpointResult(state, rounds, False, cut=str(error))
                        raise
                rounds += 1
                if not changed:
                    return FixpointResult(state, rounds, True)
                if max_rounds is not None and rounds >= max_rounds:
                    error = round_limit_error("datalog.round", max_rounds, rounds, guard)
                    if on_budget == "partial":
                        return FixpointResult(state, rounds, False, cut=str(error))
                    raise error
