"""C-objects: values of the complex constraint object model (Section 5).

Objects mirror the types of :mod:`repro.cobjects.types`:

* a :class:`PointObject` is a rational (type ``Q``);
* a :class:`TupleObject` is a tuple of objects;
* a set-typed object is either

  - a :class:`RegionObject` -- a *finitely representable pointset* (the
    paper's first-class constraint sets), wrapping a generalized
    relation and compared by pointset equality via a canonical cell
    signature; used when the element type is flat; or
  - a :class:`FiniteSetObject` -- a finite set of element objects, used
    for nested set types (sets of sets, sets of tuples-with-sets, ...).

All objects are immutable and hashable, so they can populate active
domains and be compared during C-CALC evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.cobjects.types import CType, Q, QType, SetType, TupleType, flat_arity, is_flat
from repro.core.relation import Relation
from repro.core.terms import as_fraction
from repro.core.theory import DENSE_ORDER
from repro.encoding.cells import CellDecomposition
from repro.errors import TypeCheckError

__all__ = [
    "CObject",
    "PointObject",
    "TupleObject",
    "RegionObject",
    "FiniteSetObject",
    "check_type",
    "point",
    "tup",
    "region",
    "finite_set",
]


class CObject:
    """Abstract base of c-objects (immutable, hashable)."""

    __slots__ = ()


@dataclass(frozen=True)
class PointObject(CObject):
    """A rational point (type ``Q``)."""

    value: Fraction

    def __post_init__(self) -> None:
        if not isinstance(self.value, Fraction):
            object.__setattr__(self, "value", as_fraction(self.value))

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class TupleObject(CObject):
    """A tuple of component objects."""

    components: Tuple[CObject, ...]

    def __str__(self) -> str:
        return "[" + ", ".join(map(str, self.components)) + "]"


class RegionObject(CObject):
    """A finitely representable pointset as a first-class object.

    Equality and hashing use the canonical cell signature over the
    region's own constants, so two representations of the same pointset
    are the same object -- the property set-valued variables need.
    """

    __slots__ = ("relation", "_signature", "_constants")

    def __init__(self, relation: Relation) -> None:
        if relation.theory is not DENSE_ORDER:
            raise TypeCheckError("RegionObject wraps dense-order relations")
        # normalize the schema: regions denote pointsets, not named columns
        canonical = tuple(f"x{i}" for i in range(relation.arity))
        if relation.schema != canonical:
            relation = Relation(
                DENSE_ORDER,
                canonical,
                [
                    t.reorder(canonical)
                    for t in relation.rename(
                        dict(zip(relation.schema, canonical))
                    ).tuples
                ],
            )
        self.relation = relation
        self._constants = tuple(sorted(relation.constants()))
        decomposition = CellDecomposition(self._constants)
        self._signature = frozenset(decomposition.signature(relation))

    @classmethod
    def _preconstructed(cls, relation: Relation, constants, signature) -> "RegionObject":
        """Internal fast path: the caller already knows the signature.

        Used by active-domain enumeration, where thousands of regions
        are built from subsets of one decomposition; ``signature`` must
        be the relation's signature over ``constants`` and the relation
        must already use the canonical ``x0..x{k-1}`` schema.
        """
        obj = cls.__new__(cls)
        obj.relation = relation
        obj._constants = tuple(sorted(constants))
        obj._signature = frozenset(signature)
        return obj

    @property
    def arity(self) -> int:
        return self.relation.arity

    def is_empty(self) -> bool:
        return not self._signature

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegionObject):
            return NotImplemented
        if self.arity != other.arity:
            return False
        # signatures are over each region's own constants; equal pointsets
        # have equal constants *in their canonical representation*, but two
        # representations may mention junk constants -- fall back to the
        # semantic check when the quick test is inconclusive
        if self._constants == other._constants:
            return self._signature == other._signature
        return self.relation.equivalent(other.relation)

    def __hash__(self) -> int:
        # hash on the pointset's behaviour at its own constants only would
        # break the hash/eq contract for junk-constant representations, so
        # hash conservatively on arity (equality stays exact; buckets may
        # collide for same-arity regions, acceptable for small domains)
        return hash(("region", self.arity))

    def __str__(self) -> str:
        return f"<region arity={self.arity} cells={len(self._signature)}>"

    __repr__ = __str__


@dataclass(frozen=True)
class FiniteSetObject(CObject):
    """A finite set of element objects (nested set types)."""

    elements: FrozenSet[CObject]

    def __str__(self) -> str:
        inner = ", ".join(sorted(map(str, self.elements)))
        return "{" + inner + "}"


# ----------------------------------------------------------------- builders


def point(value) -> PointObject:
    return PointObject(as_fraction(value))


def tup(*components: CObject) -> TupleObject:
    return TupleObject(tuple(components))


def region(relation: Relation) -> RegionObject:
    return RegionObject(relation)


def finite_set(elements: Iterable[CObject]) -> FiniteSetObject:
    return FiniteSetObject(frozenset(elements))


def check_type(obj: CObject, ctype: CType) -> bool:
    """Does the object inhabit the type?

    Region objects inhabit set types over flat element types of
    matching arity; finite sets inhabit any set type whose element type
    their members inhabit.
    """
    if isinstance(ctype, QType):
        return isinstance(obj, PointObject)
    if isinstance(ctype, TupleType):
        return (
            isinstance(obj, TupleObject)
            and len(obj.components) == ctype.arity
            and all(check_type(c, t) for c, t in zip(obj.components, ctype.components))
        )
    if isinstance(ctype, SetType):
        if isinstance(obj, RegionObject):
            return is_flat(ctype.element) and obj.arity == flat_arity(ctype.element)
        if isinstance(obj, FiniteSetObject):
            return all(check_type(e, ctype.element) for e in obj.elements)
        return False
    raise TypeCheckError(f"unknown c-type {ctype!r}")
