"""Active domains for C-CALC (Section 5).

The paper proposes an *active domain* semantics for C-CALC: "the range
of each set variable consists of a finite number of c-objects", which
"depend on the input database"; for flat input schemas this is "in the
spirit of quantifying over cells" [Col75, KY85].  The concrete
construction implemented here (documented as our operational reading in
DESIGN.md):

* the base decomposition is the canonical cell decomposition by the
  constants of the input database (plus any query constants);
* ``adom(Q)`` -- representative points: the constants and one sample
  per open cell;
* ``adom([t1, ..., tk])`` -- the product of component domains;
* ``adom({t})`` for *flat* ``t`` of arity k -- every union of complete
  k-cells, as a :class:`~repro.cobjects.objects.RegionObject` (there
  are ``2**(number of complete k-types)`` of them);
* ``adom({t})`` for nested ``t`` -- every finite subset of ``adom(t)``.

Each set construct therefore exponentiates the domain size: set-height
``i`` costs an i-fold exponential -- precisely the hyper-exponential
growth that Theorems 5.3-5.5 organize, and what experiment E9 measures.
``domain_size`` computes the cardinality *without* materializing.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Iterable, Iterator, List, Sequence

from repro.cobjects.objects import (
    CObject,
    FiniteSetObject,
    PointObject,
    RegionObject,
    TupleObject,
)
from repro.cobjects.types import CType, QType, SetType, TupleType, flat_arity, is_flat
from repro.core.database import Database
from repro.encoding.cells import CellDecomposition
from repro.errors import TypeCheckError

__all__ = ["ActiveDomain"]


def _powerset(items: Sequence) -> Iterator[frozenset]:
    for r in range(len(items) + 1):
        for combo in itertools.combinations(items, r):
            yield frozenset(combo)


class ActiveDomain:
    """The active domain of every c-type over one input decomposition."""

    def __init__(
        self, database: Database, extra_constants: Iterable[Fraction] = ()
    ) -> None:
        self.database = database
        constants = set(database.constants()) | set(extra_constants)
        self.decomposition = CellDecomposition(constants)

    # ----------------------------------------------------------------- sizes

    def domain_size(self, ctype: CType) -> int:
        """Cardinality of ``adom(ctype)`` (computed, not materialized)."""
        if isinstance(ctype, QType):
            return self.decomposition.cell_count
        if isinstance(ctype, TupleType):
            size = 1
            for c in ctype.components:
                size *= self.domain_size(c)
            return size
        if isinstance(ctype, SetType):
            if is_flat(ctype.element):
                return 2 ** self.decomposition.type_count(flat_arity(ctype.element))
            return 2 ** self.domain_size(ctype.element)
        raise TypeCheckError(f"unknown c-type {ctype!r}")

    # ------------------------------------------------------------ enumeration

    def enumerate(self, ctype: CType) -> Iterator[CObject]:
        """Yield every object of the active domain of ``ctype``.

        Exponential (and worse) in set-height; meant for the tiny
        instances of the Section 5 experiments.
        """
        if isinstance(ctype, QType):
            for i in range(self.decomposition.cell_count):
                yield PointObject(self.decomposition.cell_sample(i))
            return
        if isinstance(ctype, TupleType):
            domains = [list(self.enumerate(c)) for c in ctype.components]
            for combo in itertools.product(*domains):
                yield TupleObject(tuple(combo))
            return
        if isinstance(ctype, SetType):
            if is_flat(ctype.element):
                yield from self._enumerate_regions(flat_arity(ctype.element))
                return
            elements = list(self.enumerate(ctype.element))
            for subset in _powerset(elements):
                yield FiniteSetObject(subset)
            return
        raise TypeCheckError(f"unknown c-type {ctype!r}")

    def _enumerate_regions(self, arity: int) -> Iterator[RegionObject]:
        schema = tuple(f"x{i}" for i in range(arity))
        types = list(self.decomposition.complete_types(arity))
        constants = self.decomposition.constants
        for subset in _powerset(types):
            relation = self.decomposition.relation_of_signature(subset, schema)
            yield RegionObject._preconstructed(relation, constants, subset)

    def point_values(self) -> List[Fraction]:
        """The representative points of ``adom(Q)``."""
        return [
            self.decomposition.cell_sample(i)
            for i in range(self.decomposition.cell_count)
        ]

    def __repr__(self) -> str:
        return f"<ActiveDomain over {self.decomposition!r}>"
