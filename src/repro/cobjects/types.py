"""C-types: the type system of complex constraint objects (Section 5).

The paper composes "complex constraint objects" from finitely
representable pointsets with the tuple and set constructs.  Types::

    tau ::= Q | [tau1, ..., tauk] | {tau}

The *set-height* of a type is the maximal number of set constructs on a
root-to-leaf path of its syntax tree ([HS91]); C-CALC_i is the fragment
whose types have set-height <= i, and Theorems 5.2-5.4 organize the
expressiveness hierarchy along this measure.

A type is *flat* when it is ``Q`` or a tuple of ``Q`` -- the types of
classical dense-order relations.  A set type over a flat element type
denotes finitely representable pointsets; deeper set types denote
finite sets of objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import TypeCheckError

__all__ = ["CType", "QType", "TupleType", "SetType", "Q", "set_height", "is_flat",
           "flat_arity"]


class CType:
    """Abstract base of c-types (immutable)."""

    __slots__ = ()


@dataclass(frozen=True)
class QType(CType):
    """The base type: a rational point."""

    def __str__(self) -> str:
        return "Q"


#: the shared base type instance
Q = QType()


@dataclass(frozen=True)
class TupleType(CType):
    """``[tau1, ..., tauk]`` -- a k-tuple of component types."""

    components: Tuple[CType, ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise TypeCheckError("tuple types need at least one component")
        for c in self.components:
            if not isinstance(c, CType):
                raise TypeCheckError(f"not a c-type: {c!r}")

    @property
    def arity(self) -> int:
        return len(self.components)

    def __str__(self) -> str:
        return "[" + ", ".join(map(str, self.components)) + "]"


@dataclass(frozen=True)
class SetType(CType):
    """``{tau}`` -- a set of objects of the element type."""

    element: CType

    def __post_init__(self) -> None:
        if not isinstance(self.element, CType):
            raise TypeCheckError(f"not a c-type: {self.element!r}")

    def __str__(self) -> str:
        return "{" + str(self.element) + "}"


def set_height(ctype: CType) -> int:
    """Maximal number of set constructs on a root-to-leaf path ([HS91])."""
    if isinstance(ctype, QType):
        return 0
    if isinstance(ctype, TupleType):
        return max(set_height(c) for c in ctype.components)
    if isinstance(ctype, SetType):
        return 1 + set_height(ctype.element)
    raise TypeCheckError(f"unknown c-type {ctype!r}")


def is_flat(ctype: CType) -> bool:
    """Is the type ``Q`` or a tuple of ``Q`` (a classical relation row)?"""
    if isinstance(ctype, QType):
        return True
    if isinstance(ctype, TupleType):
        return all(isinstance(c, QType) for c in ctype.components)
    return False


def flat_arity(ctype: CType) -> int:
    """Arity of a flat type (1 for ``Q``)."""
    if isinstance(ctype, QType):
        return 1
    if isinstance(ctype, TupleType) and is_flat(ctype):
        return ctype.arity
    raise TypeCheckError(f"{ctype} is not flat")
