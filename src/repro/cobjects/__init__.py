"""Complex constraint objects and C-CALC (paper Section 5).

* :mod:`repro.cobjects.types` -- c-types, set-height, flatness;
* :mod:`repro.cobjects.objects` -- c-objects (points, tuples, regions
  as first-class finitely representable sets, nested finite sets);
* :mod:`repro.cobjects.active_domain` -- the active-domain semantics'
  ranges ("quantifying over cells"), with exact cardinality accounting;
* :mod:`repro.cobjects.calculus` -- C-CALC syntax and evaluation;
* :mod:`repro.cobjects.fixpoint` -- the fixpoint extension (Thm 5.6).
"""

from repro.cobjects.active_domain import ActiveDomain
from repro.cobjects.calculus import (
    CAnd,
    CConstraint,
    CExists,
    CFalse,
    CForAll,
    CFormula,
    CNot,
    COr,
    CRelation,
    CTrue,
    Comprehension,
    ExistsSet,
    ForAllSet,
    Member,
    MemberSet,
    SetConst,
    SetEq,
    SetTerm,
    SetVar,
    evaluate_ccalc,
    evaluate_ccalc_boolean,
    set_height,
)
from repro.cobjects.fixpoint import FixpointQuery, PartialRelation, evaluate_fixpoint
from repro.cobjects.range_restriction import (
    RangeRestrictionError,
    check_range_restricted,
    evaluate_ccalc_restricted,
    evaluate_ccalc_restricted_boolean,
    restricted_domain,
)
from repro.cobjects.while_loop import WhileDivergence, WhileQuery, evaluate_while
from repro.cobjects.objects import (
    CObject,
    FiniteSetObject,
    PointObject,
    RegionObject,
    TupleObject,
    check_type,
    finite_set,
    point,
    region,
    tup,
)
from repro.cobjects.types import (
    CType,
    Q,
    QType,
    SetType,
    TupleType,
    flat_arity,
    is_flat,
)
from repro.cobjects.types import set_height as type_set_height

__all__ = [
    "ActiveDomain",
    "CAnd",
    "CConstraint",
    "CExists",
    "CFalse",
    "CForAll",
    "CFormula",
    "CNot",
    "COr",
    "CRelation",
    "CTrue",
    "Comprehension",
    "ExistsSet",
    "ForAllSet",
    "Member",
    "MemberSet",
    "SetConst",
    "SetEq",
    "SetTerm",
    "SetVar",
    "evaluate_ccalc",
    "evaluate_ccalc_boolean",
    "set_height",
    "FixpointQuery",
    "PartialRelation",
    "evaluate_fixpoint",
    "RangeRestrictionError",
    "check_range_restricted",
    "evaluate_ccalc_restricted",
    "evaluate_ccalc_restricted_boolean",
    "restricted_domain",
    "WhileDivergence",
    "WhileQuery",
    "evaluate_while",
    "CObject",
    "FiniteSetObject",
    "PointObject",
    "RegionObject",
    "TupleObject",
    "check_type",
    "finite_set",
    "point",
    "region",
    "tup",
    "CType",
    "Q",
    "QType",
    "SetType",
    "TupleType",
    "flat_arity",
    "is_flat",
    "type_set_height",
]
