"""The while extension of C-CALC (Theorem 5.6).

``C-CALC_i + while = H_i-SPACE``: alongside the (inflationary) fixpoint
operator, the paper extends C-CALC with a *while* construct "similarly
to [KKR90, GV91]".  Unlike fixpoint, while-iteration *replaces* the
relation variable each round::

    while S changes:  S := { x | phi(S, x) }

Replacement semantics is non-monotone: the iteration may enter a cycle
and never stabilize (that is exactly why while climbs from Hi-TIME to
Hi-SPACE).  :func:`evaluate_while` detects both outcomes precisely:

* stabilization -- the canonical state repeats the *previous* state:
  return it;
* a longer cycle -- some earlier state recurs: the loop provably
  diverges; raise :class:`WhileDivergence`.

Cycle detection is exact because states are canonical cell signatures
over the fixed input constants, a finite space.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.cobjects.active_domain import ActiveDomain
from repro.cobjects.calculus import CFormula, evaluate_ccalc
from repro.cobjects.fixpoint import PartialRelation
from repro.core.database import Database
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.errors import DatalogError, EvaluationError
from repro.obs.trace import active_tracer, span
from repro.runtime.budget import Budget, BudgetExceeded
from repro.runtime.faults import fault_point
from repro.runtime.guard import EvaluationGuard, round_limit_error

__all__ = ["WhileQuery", "WhileDivergence", "evaluate_while"]


class WhileDivergence(EvaluationError):
    """The while-loop entered a state cycle and cannot terminate."""


@dataclass
class WhileQuery:
    """``while S changes: S := {x | phi(S, x)}`` (replacement semantics)."""

    name: str
    variables: Tuple[str, ...]
    formula: CFormula

    @property
    def arity(self) -> int:
        return len(self.variables)


def _state_key(relation: Relation, decomposition) -> FrozenSet:
    return decomposition.signature(relation)


def _formula_constants(formula: CFormula) -> FrozenSet[Fraction]:
    """All rational constants of a C-CALC formula (atoms, set constants,
    comprehension bodies) -- the loop's states never leave the cell
    decomposition these induce together with the database constants."""
    from repro.cobjects.calculus import (
        CAnd,
        CConstraint,
        CExists,
        CForAll,
        CNot,
        COr,
        Comprehension,
        ExistsSet,
        ForAllSet,
        Member,
        MemberSet,
        SetConst,
        SetEq,
        SetTerm,
    )
    from repro.cobjects.objects import RegionObject

    out: set = set()

    def from_term(term: SetTerm) -> None:
        if isinstance(term, SetConst) and isinstance(term.value, RegionObject):
            out.update(term.value.relation.constants())
        elif isinstance(term, Comprehension):
            walk(term.body)

    def walk(node: CFormula) -> None:
        if isinstance(node, CConstraint) and not isinstance(node.atom, bool):
            out.update(node.atom.constants)
        elif isinstance(node, (CAnd, COr)):
            for s in node.subs:
                walk(s)
        elif isinstance(node, CNot):
            walk(node.sub)
        elif isinstance(node, (CExists, CForAll, ExistsSet, ForAllSet)):
            walk(node.sub)
        elif isinstance(node, Member):
            from_term(node.term)
        elif isinstance(node, MemberSet):
            from_term(node.element)
            from_term(node.term)
        elif isinstance(node, SetEq):
            from_term(node.left)
            from_term(node.right)

    walk(formula)
    return frozenset(out)


def evaluate_while(
    query: WhileQuery,
    database: Database,
    extra_constants: Iterable[Fraction] = (),
    max_rounds: Optional[int] = None,
    *,
    budget: Optional[Budget] = None,
    guard: Optional[EvaluationGuard] = None,
    on_budget: str = "raise",
) -> Relation:
    """Iterate until stabilization; raise :class:`WhileDivergence` on a
    provable cycle (exact, via canonical cell signatures).

    Non-convergence within ``max_rounds`` (or the budget) is reported
    like every other fixpoint engine: raise
    :class:`~repro.runtime.budget.RoundLimitExceeded` by default, or
    return the state of the last completed round as a tagged
    :class:`~repro.cobjects.fixpoint.PartialRelation` under
    ``on_budget="partial"`` (best effort only — replacement semantics
    is non-monotone, so unlike the inflationary engines a truncated
    while-state is not a sound under-approximation of the limit).
    """
    from repro.datalog.engine import check_on_budget, resolve_guard

    check_on_budget(on_budget)
    guard = resolve_guard(guard, budget)
    if query.name in database:
        raise DatalogError(
            f"relation variable {query.name!r} clashes with a stored relation"
        )
    from repro.encoding.cells import CellDecomposition

    schema = tuple(query.variables)
    loop_constants = (
        set(database.constants())
        | set(extra_constants)
        | set(_formula_constants(query.formula))
    )
    adom = ActiveDomain(database, loop_constants)
    decomposition = CellDecomposition(loop_constants)
    current = Relation.empty(schema, DENSE_ORDER)
    seen: Dict[FrozenSet, int] = {_state_key(current, decomposition): 0}
    rounds = 0
    with guard if guard is not None else contextlib.nullcontext(), span(
        "ccalc.while", relvar=query.name, arity=query.arity
    ):
        while True:
            with span("ccalc.while.round", round=rounds + 1) as sp:
                try:
                    if guard is not None:
                        guard.on_round("ccalc.while.round")
                    fault_point("ccalc.while.round")
                    working = database.copy()
                    working[query.name] = current
                    derived = evaluate_ccalc(query.formula, working, extra_constants, adom)
                    missing = [v for v in schema if v not in derived.schema]
                    if missing:
                        derived = derived.extend(tuple(derived.schema) + tuple(missing))
                    projected = derived.project(tuple(sorted(schema)))
                    new = Relation(
                        DENSE_ORDER, schema, [t.reorder(schema) for t in projected.tuples]
                    )
                    if sp is not None:
                        # replacement semantics: the delta is the symmetric
                        # difference between consecutive states
                        delta = len(
                            frozenset(new.tuples) ^ frozenset(current.tuples)
                        )
                        sp.attrs["delta_tuples"] = delta
                        sp.attrs["state_tuples"] = len(new.tuples)
                        tracer = active_tracer()
                        tracer.metrics.count("ccalc.while.rounds")
                        tracer.metrics.observe("ccalc.while.delta_tuples", delta)
                        tracer.log(
                            "ccalc.while.round",
                            round=rounds + 1,
                            delta_tuples=delta,
                            state_tuples=len(new.tuples),
                        )
                except BudgetExceeded as error:
                    if on_budget == "partial":
                        return PartialRelation(current, rounds, str(error))
                    raise
            this_round = rounds + 1
            key = _state_key(new, decomposition)
            previous_round = seen.get(key)
            if previous_round == this_round - 1:
                return new  # stabilized: S = {x | phi(S, x)}
            if previous_round is not None:
                raise WhileDivergence(
                    f"state of round {this_round} repeats round {previous_round}: "
                    f"cycle of length {this_round - previous_round}, the loop diverges"
                )
            seen[key] = this_round
            current = new
            rounds = this_round
            if max_rounds is not None and rounds >= max_rounds:
                error = round_limit_error("ccalc.while.round", max_rounds, rounds, guard)
                if on_budget == "partial":
                    return PartialRelation(current, rounds, str(error))
                raise error
