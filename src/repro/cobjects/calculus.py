"""C-CALC: the calculus for complex constraint objects (Section 5).

Syntax (over the language ``L_c``): first-order formulas with

* point variables with dense-order constraints, and database relation
  atoms (as in FO);
* *set variables* of any c-type, quantified by :class:`ExistsSet` /
  :class:`ForAllSet`;
* membership ``(x1, ..., xk) in T`` of point tuples in flat set terms
  (:class:`Member`), membership of set terms in nested set terms
  (:class:`MemberSet`), and set-term equality (:class:`SetEq`);
* *set terms*: set variables, constant objects, and comprehensions
  ``{(x1, ..., xk) | phi}`` (:class:`Comprehension`).

Semantics: the paper's *active domain* semantics -- every set variable
ranges over the finitely many c-objects built from the input's
canonical cells (:class:`~repro.cobjects.active_domain.ActiveDomain`).
Evaluation grounds set quantifiers by enumeration, reduces ground
memberships to relation atoms over temporary relations, and hands the
resulting FO formula to the closed-form evaluator.  The cost is the
active-domain size -- exponential per set-height level, which is the
content of Theorems 5.2-5.5.

``set_height`` of a query is the maximal set-height of the types of its
set variables and comprehensions; C-CALC_0 is exactly FO.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from repro.cobjects.active_domain import ActiveDomain
from repro.cobjects.objects import CObject, FiniteSetObject, RegionObject, check_type
from repro.cobjects.types import CType, SetType, TupleType, Q, flat_arity, is_flat
from repro.cobjects.types import set_height as type_set_height
from repro.core.database import Database
from repro.core.evaluator import evaluate as core_evaluate
from repro.core.formula import (
    FALSE,
    TRUE,
    And,
    Constraint,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    RelationAtom,
    conj,
    disj,
)
from repro.core.relation import Relation
from repro.core.terms import Term, TermLike, Var, as_term
from repro.core.theory import DENSE_ORDER
from repro.errors import EvaluationError, TypeCheckError

__all__ = [
    "CFormula",
    "CTrue",
    "CFalse",
    "CConstraint",
    "CRelation",
    "CAnd",
    "COr",
    "CNot",
    "CExists",
    "CForAll",
    "ExistsSet",
    "ForAllSet",
    "Member",
    "MemberSet",
    "SetEq",
    "SetTerm",
    "SetVar",
    "SetConst",
    "Comprehension",
    "set_height",
    "evaluate_ccalc",
    "evaluate_ccalc_boolean",
]


# ------------------------------------------------------------------ set terms


class SetTerm:
    """Abstract base of set-valued terms."""

    __slots__ = ()


@dataclass(frozen=True)
class SetVar(SetTerm):
    """A set variable with its declared c-type (a set type)."""

    name: str
    ctype: CType

    def __post_init__(self) -> None:
        if not isinstance(self.ctype, SetType):
            raise TypeCheckError(f"set variable {self.name} needs a set type")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SetConst(SetTerm):
    """A constant c-object used as a set term."""

    value: CObject

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Comprehension(SetTerm):
    """``{(x1, ..., xk) | body}`` -- a flat set term.

    The bound variables are point variables; the body is a C-CALC
    formula.  The denoted object is the region of satisfying tuples.
    """

    variables: Tuple[str, ...]
    body: "CFormula"

    def __post_init__(self) -> None:
        if not self.variables:
            raise TypeCheckError("comprehension needs at least one variable")

    def __str__(self) -> str:
        return "{(" + ", ".join(self.variables) + ") | " + str(self.body) + "}"


# ------------------------------------------------------------------- formulas


class CFormula:
    """Abstract base of C-CALC formulas."""

    __slots__ = ()

    def __and__(self, other: "CFormula") -> "CFormula":
        return CAnd((self, other))

    def __or__(self, other: "CFormula") -> "CFormula":
        return COr((self, other))

    def __invert__(self) -> "CFormula":
        return CNot(self)

    def implies(self, other: "CFormula") -> "CFormula":
        return COr((CNot(self), other))

    def iff(self, other: "CFormula") -> "CFormula":
        return CAnd((self.implies(other), other.implies(self)))


@dataclass(frozen=True)
class CTrue(CFormula):
    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class CFalse(CFormula):
    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class CConstraint(CFormula):
    """A dense-order constraint atom on point variables."""

    atom: object

    def __str__(self) -> str:
        return str(self.atom)


@dataclass(frozen=True)
class CRelation(CFormula):
    """A database relation atom ``R(t1, ..., tk)``."""

    name: str
    args: Tuple[Term, ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class CAnd(CFormula):
    subs: Tuple[CFormula, ...]

    def __str__(self) -> str:
        return "(" + " and ".join(map(str, self.subs)) + ")"


@dataclass(frozen=True)
class COr(CFormula):
    subs: Tuple[CFormula, ...]

    def __str__(self) -> str:
        return "(" + " or ".join(map(str, self.subs)) + ")"


@dataclass(frozen=True)
class CNot(CFormula):
    sub: CFormula

    def __str__(self) -> str:
        return f"not {self.sub}"


@dataclass(frozen=True)
class CExists(CFormula):
    """Existential quantification over point variables."""

    variables: Tuple[str, ...]
    sub: CFormula

    def __str__(self) -> str:
        return f"(exists {', '.join(self.variables)}. {self.sub})"


@dataclass(frozen=True)
class CForAll(CFormula):
    """Universal quantification over point variables."""

    variables: Tuple[str, ...]
    sub: CFormula

    def __str__(self) -> str:
        return f"(forall {', '.join(self.variables)}. {self.sub})"


@dataclass(frozen=True)
class ExistsSet(CFormula):
    """``exists S : tau . sub`` -- active-domain set quantification."""

    var: SetVar
    sub: CFormula

    def __str__(self) -> str:
        return f"(exists {self.var.name} : {self.var.ctype}. {self.sub})"


@dataclass(frozen=True)
class ForAllSet(CFormula):
    """``forall S : tau . sub``."""

    var: SetVar
    sub: CFormula

    def __str__(self) -> str:
        return f"(forall {self.var.name} : {self.var.ctype}. {self.sub})"


@dataclass(frozen=True)
class Member(CFormula):
    """``(t1, ..., tk) in T`` for a flat set term ``T``."""

    args: Tuple[Term, ...]
    term: SetTerm

    def __str__(self) -> str:
        return f"({', '.join(map(str, self.args))}) in {self.term}"


@dataclass(frozen=True)
class MemberSet(CFormula):
    """``S in T`` for set terms (``T`` of nested set type)."""

    element: SetTerm
    term: SetTerm

    def __str__(self) -> str:
        return f"{self.element} in {self.term}"


@dataclass(frozen=True)
class SetEq(CFormula):
    """``S = T`` -- equality of set terms."""

    left: SetTerm
    right: SetTerm

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


# ------------------------------------------------------------------ analysis


def _term_height(term: SetTerm) -> int:
    if isinstance(term, SetVar):
        return type_set_height(term.ctype)
    if isinstance(term, SetConst):
        return 0  # constants do not add quantified structure
    if isinstance(term, Comprehension):
        return max(1, set_height(term.body))
    raise TypeCheckError(f"unknown set term {term!r}")


def set_height(formula: CFormula) -> int:
    """Set-height of a query: C-CALC_i membership measure ([HS91])."""
    if isinstance(formula, (CTrue, CFalse, CConstraint, CRelation)):
        return 0
    if isinstance(formula, (CAnd, COr)):
        return max((set_height(s) for s in formula.subs), default=0)
    if isinstance(formula, CNot):
        return set_height(formula.sub)
    if isinstance(formula, (CExists, CForAll)):
        return set_height(formula.sub)
    if isinstance(formula, (ExistsSet, ForAllSet)):
        return max(type_set_height(formula.var.ctype), set_height(formula.sub))
    if isinstance(formula, Member):
        return _term_height(formula.term)
    if isinstance(formula, MemberSet):
        return max(_term_height(formula.element), _term_height(formula.term))
    if isinstance(formula, SetEq):
        return max(_term_height(formula.left), _term_height(formula.right))
    raise TypeCheckError(f"unknown C-CALC node {formula!r}")


def _substitute_set(formula: CFormula, name: str, value: CObject) -> CFormula:
    """Ground one set variable throughout."""

    def in_term(term: SetTerm) -> SetTerm:
        if isinstance(term, SetVar) and term.name == name:
            return SetConst(value)
        if isinstance(term, Comprehension):
            return Comprehension(term.variables, _substitute_set(term.body, name, value))
        return term

    if isinstance(formula, (CTrue, CFalse, CConstraint, CRelation)):
        return formula
    if isinstance(formula, CAnd):
        return CAnd(tuple(_substitute_set(s, name, value) for s in formula.subs))
    if isinstance(formula, COr):
        return COr(tuple(_substitute_set(s, name, value) for s in formula.subs))
    if isinstance(formula, CNot):
        return CNot(_substitute_set(formula.sub, name, value))
    if isinstance(formula, CExists):
        return CExists(formula.variables, _substitute_set(formula.sub, name, value))
    if isinstance(formula, CForAll):
        return CForAll(formula.variables, _substitute_set(formula.sub, name, value))
    if isinstance(formula, ExistsSet):
        if formula.var.name == name:  # shadowed
            return formula
        return ExistsSet(formula.var, _substitute_set(formula.sub, name, value))
    if isinstance(formula, ForAllSet):
        if formula.var.name == name:
            return formula
        return ForAllSet(formula.var, _substitute_set(formula.sub, name, value))
    if isinstance(formula, Member):
        return Member(formula.args, in_term(formula.term))
    if isinstance(formula, MemberSet):
        return MemberSet(in_term(formula.element), in_term(formula.term))
    if isinstance(formula, SetEq):
        return SetEq(in_term(formula.left), in_term(formula.right))
    raise TypeCheckError(f"unknown C-CALC node {formula!r}")


# ----------------------------------------------------------------- evaluation


class _Translator:
    """Reduce a set-variable-free C-CALC formula to core FO."""

    def __init__(self, database: Database, adom: ActiveDomain) -> None:
        self.database = database
        self.adom = adom
        self.temp = Database(theory=DENSE_ORDER)
        for name, relation in database.items():
            self.temp[name] = relation
        self._counter = itertools.count()

    def _inject(self, relation: Relation) -> str:
        name = f"__set{next(self._counter)}"
        self.temp[name] = relation
        return name

    def resolve(self, term: SetTerm) -> CObject:
        if isinstance(term, SetConst):
            return term.value
        if isinstance(term, Comprehension):
            body = self.translate(term.body)
            schema = tuple(term.variables)
            result = core_evaluate(body, self.temp, DENSE_ORDER)
            widened = result.extend(
                tuple(sorted(set(result.schema) | set(schema)))
            )
            projected = widened.project(tuple(sorted(schema)))
            ordered = Relation(
                DENSE_ORDER,
                schema,
                [t.reorder(schema) for t in projected.tuples],
            )
            free = _core_free(body) - set(schema)
            if free:
                raise EvaluationError(
                    f"comprehension body has free point variables {sorted(free)} "
                    "outside its bound tuple; parameterized comprehensions must "
                    "be grounded by the surrounding evaluation"
                )
            return RegionObject(ordered)
        if isinstance(term, SetVar):
            raise EvaluationError(
                f"set variable {term.name} is unbound; quantify it with "
                "ExistsSet/ForAllSet or substitute a constant"
            )
        raise TypeCheckError(f"unknown set term {term!r}")

    def translate(self, formula: CFormula) -> Formula:
        if isinstance(formula, CTrue):
            return TRUE
        if isinstance(formula, CFalse):
            return FALSE
        if isinstance(formula, CConstraint):
            if isinstance(formula.atom, bool):
                return TRUE if formula.atom else FALSE
            return Constraint(formula.atom)
        if isinstance(formula, CRelation):
            return RelationAtom(formula.name, formula.args)
        if isinstance(formula, CAnd):
            return conj(*(self.translate(s) for s in formula.subs))
        if isinstance(formula, COr):
            return disj(*(self.translate(s) for s in formula.subs))
        if isinstance(formula, CNot):
            return Not(self.translate(formula.sub))
        if isinstance(formula, CExists):
            return Exists(formula.variables, self.translate(formula.sub))
        if isinstance(formula, CForAll):
            return ForAll(formula.variables, self.translate(formula.sub))
        if isinstance(formula, ExistsSet):
            parts = []
            for obj in self.adom.enumerate(formula.var.ctype):
                grounded = _substitute_set(formula.sub, formula.var.name, obj)
                parts.append(self.translate(grounded))
            return disj(*parts)
        if isinstance(formula, ForAllSet):
            parts = []
            for obj in self.adom.enumerate(formula.var.ctype):
                grounded = _substitute_set(formula.sub, formula.var.name, obj)
                parts.append(self.translate(grounded))
            return conj(*parts)
        if isinstance(formula, Member):
            target = self.resolve(formula.term)
            if isinstance(target, RegionObject):
                if target.arity != len(formula.args):
                    raise TypeCheckError(
                        f"membership arity mismatch: {len(formula.args)} args "
                        f"vs region arity {target.arity}"
                    )
                return RelationAtom(self._inject(target.relation), formula.args)
            raise TypeCheckError(
                "point-tuple membership requires a flat (region) set term; "
                "use MemberSet for nested sets"
            )
        if isinstance(formula, MemberSet):
            element = self.resolve(formula.element)
            target = self.resolve(formula.term)
            if not isinstance(target, FiniteSetObject):
                raise TypeCheckError("MemberSet requires a nested (finite) set term")
            return TRUE if element in target.elements else FALSE
        if isinstance(formula, SetEq):
            return TRUE if self.resolve(formula.left) == self.resolve(formula.right) else FALSE
        raise TypeCheckError(f"unknown C-CALC node {formula!r}")


def _core_free(formula: Formula) -> set:
    return {v.name for v in formula.free_variables()}


def evaluate_ccalc(
    formula: CFormula,
    database: Database,
    extra_constants: Iterable[Fraction] = (),
    adom: Optional[ActiveDomain] = None,
) -> Relation:
    """Evaluate a C-CALC query under the active-domain semantics.

    The result ranges over the free *point* variables; free set
    variables are an error.  ``extra_constants`` refine the active
    domain with the query's constants.
    """
    domain = adom or ActiveDomain(database, extra_constants)
    translator = _Translator(database, domain)
    translated = translator.translate(formula)
    return core_evaluate(translated, translator.temp, DENSE_ORDER)


def evaluate_ccalc_boolean(
    formula: CFormula,
    database: Database,
    extra_constants: Iterable[Fraction] = (),
    adom: Optional[ActiveDomain] = None,
) -> bool:
    """Evaluate a C-CALC sentence to a boolean."""
    result = evaluate_ccalc(formula, database, extra_constants, adom)
    if result.schema:
        raise EvaluationError(
            f"formula is not a sentence; free point variables {result.schema}"
        )
    return not result.is_empty()
