"""C-CALC with fixpoint and while (Theorem 5.6).

The paper extends C-CALC with fixpoint and while constructs "similarly
to [KKR90, GV91]" and shows ``C-CALC_i + fixpoint = H_i-TIME``.  This
module implements the *inflationary fixpoint* operator over the flat
fragment:

    fixpoint(S/k, phi)  --  iterate  S := S union { x | phi(S, x) }

where ``phi`` is a C-CALC formula referring to the k-ary relation
variable ``S`` through an ordinary relation atom.  Each iteration
evaluates ``phi`` under the active-domain semantics with the current
``S`` injected as a database relation; the iteration terminates because
the sequence is inflationary and confined to the cells of the input
decomposition.

``C-CALC_0 + fixpoint`` already expresses transitive closure (not FO);
experiment E10 demonstrates the theorem's flavor by measuring it.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Optional, Sequence, Tuple

from repro.cobjects.active_domain import ActiveDomain
from repro.cobjects.calculus import CFormula, evaluate_ccalc
from repro.core.database import Database
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.errors import DatalogError, EvaluationError

__all__ = ["FixpointQuery", "evaluate_fixpoint"]


@dataclass
class FixpointQuery:
    """An inflationary fixpoint ``S := S union {x | phi(S, x)}``.

    ``variables`` lists the point variables of the head (the tuple
    collected each round); ``formula`` may mention the relation
    variable by ``name`` and any database relations.
    """

    name: str
    variables: Tuple[str, ...]
    formula: CFormula

    @property
    def arity(self) -> int:
        return len(self.variables)


def evaluate_fixpoint(
    query: FixpointQuery,
    database: Database,
    extra_constants: Iterable[Fraction] = (),
    max_rounds: Optional[int] = None,
) -> Relation:
    """Run the inflationary fixpoint to convergence.

    Returns the final value of the relation variable.  The active
    domain is fixed once, from the input database plus
    ``extra_constants`` (iterations add no new constants, mirroring the
    closed-form property of the dense-order engine).
    """
    if query.name in database:
        raise DatalogError(
            f"relation variable {query.name!r} clashes with a stored relation"
        )
    schema = tuple(query.variables)
    current = Relation.empty(schema, DENSE_ORDER)
    adom = ActiveDomain(database, extra_constants)
    rounds = 0
    while True:
        rounds += 1
        working = database.copy()
        working[query.name] = current
        derived = evaluate_ccalc(query.formula, working, extra_constants, adom)
        missing = [v for v in schema if v not in derived.schema]
        if missing:
            derived = derived.extend(tuple(derived.schema) + tuple(missing))
        projected = derived.project(tuple(sorted(schema)))
        ordered = Relation(
            DENSE_ORDER, schema, [t.reorder(schema) for t in projected.tuples]
        )
        grown = current.union(ordered).simplify()
        # syntactic stagnation of canonical tuples is a sound fixpoint
        # test for inflationary iteration (see repro.datalog.engine)
        if frozenset(grown.tuples) == frozenset(current.tuples):
            return current
        current = grown
        if max_rounds is not None and rounds >= max_rounds:
            raise EvaluationError(
                f"fixpoint did not converge within {max_rounds} rounds"
            )
