"""C-CALC with fixpoint and while (Theorem 5.6).

The paper extends C-CALC with fixpoint and while constructs "similarly
to [KKR90, GV91]" and shows ``C-CALC_i + fixpoint = H_i-TIME``.  This
module implements the *inflationary fixpoint* operator over the flat
fragment:

    fixpoint(S/k, phi)  --  iterate  S := S union { x | phi(S, x) }

where ``phi`` is a C-CALC formula referring to the k-ary relation
variable ``S`` through an ordinary relation atom.  Each iteration
evaluates ``phi`` under the active-domain semantics with the current
``S`` injected as a database relation; the iteration terminates because
the sequence is inflationary and confined to the cells of the input
decomposition.

``C-CALC_0 + fixpoint`` already expresses transitive closure (not FO);
experiment E10 demonstrates the theorem's flavor by measuring it.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Optional, Sequence, Tuple

from repro.cobjects.active_domain import ActiveDomain
from repro.cobjects.calculus import CFormula, evaluate_ccalc
from repro.core.database import Database
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.errors import DatalogError, EvaluationError
from repro.obs.trace import active_tracer, span
from repro.runtime.budget import Budget, BudgetExceeded
from repro.runtime.faults import fault_point
from repro.runtime.guard import EvaluationGuard, round_limit_error

__all__ = ["FixpointQuery", "PartialRelation", "evaluate_fixpoint"]


class PartialRelation(Relation):
    """A truncated iteration result: the relation computed so far,
    tagged with what the budget cut.

    Behaves as an ordinary :class:`Relation` everywhere (same schema,
    same algebra); ``reached_fixpoint`` is always ``False``, ``rounds``
    counts the completed rounds, and ``cut`` names the budget that
    tripped — the same tagging the Datalog engines put on a partial
    :class:`~repro.datalog.engine.FixpointResult`.
    """

    __slots__ = ("reached_fixpoint", "rounds", "cut")

    def __init__(self, relation: Relation, rounds: int, cut: str) -> None:
        super().__init__(relation.theory, relation.schema, relation.tuples)
        self.reached_fixpoint = False
        self.rounds = rounds
        self.cut = cut


@dataclass
class FixpointQuery:
    """An inflationary fixpoint ``S := S union {x | phi(S, x)}``.

    ``variables`` lists the point variables of the head (the tuple
    collected each round); ``formula`` may mention the relation
    variable by ``name`` and any database relations.
    """

    name: str
    variables: Tuple[str, ...]
    formula: CFormula

    @property
    def arity(self) -> int:
        return len(self.variables)


def evaluate_fixpoint(
    query: FixpointQuery,
    database: Database,
    extra_constants: Iterable[Fraction] = (),
    max_rounds: Optional[int] = None,
    *,
    budget: Optional[Budget] = None,
    guard: Optional[EvaluationGuard] = None,
    on_budget: str = "raise",
) -> Relation:
    """Run the inflationary fixpoint to convergence.

    Returns the final value of the relation variable.  The active
    domain is fixed once, from the input database plus
    ``extra_constants`` (iterations add no new constants, mirroring the
    closed-form property of the dense-order engine).

    Non-convergence within ``max_rounds`` (or the budget) is reported
    like every other fixpoint engine: raise
    :class:`~repro.runtime.budget.RoundLimitExceeded` (an
    :class:`EvaluationError`) by default, or return the sound partial
    state as a tagged :class:`PartialRelation` under
    ``on_budget="partial"``.
    """
    from repro.datalog.engine import check_on_budget, resolve_guard

    check_on_budget(on_budget)
    guard = resolve_guard(guard, budget)
    if query.name in database:
        raise DatalogError(
            f"relation variable {query.name!r} clashes with a stored relation"
        )
    schema = tuple(query.variables)
    current = Relation.empty(schema, DENSE_ORDER)
    adom = ActiveDomain(database, extra_constants)
    rounds = 0
    with guard if guard is not None else contextlib.nullcontext(), span(
        "ccalc.fixpoint", relvar=query.name, arity=query.arity
    ):
        while True:
            with span("ccalc.fixpoint.round", round=rounds + 1) as sp:
                try:
                    if guard is not None:
                        guard.on_round("ccalc.fixpoint.round")
                    fault_point("ccalc.fixpoint.round")
                    working = database.copy()
                    working[query.name] = current
                    derived = evaluate_ccalc(query.formula, working, extra_constants, adom)
                    missing = [v for v in schema if v not in derived.schema]
                    if missing:
                        derived = derived.extend(tuple(derived.schema) + tuple(missing))
                    projected = derived.project(tuple(sorted(schema)))
                    ordered = Relation(
                        DENSE_ORDER, schema, [t.reorder(schema) for t in projected.tuples]
                    )
                    grown = current.union(ordered).simplify()
                    if sp is not None:
                        delta = len(
                            frozenset(grown.tuples) - frozenset(current.tuples)
                        )
                        sp.attrs["delta_tuples"] = delta
                        tracer = active_tracer()
                        tracer.metrics.count("ccalc.fixpoint.rounds")
                        tracer.metrics.observe("ccalc.fixpoint.delta_tuples", delta)
                        tracer.log(
                            "ccalc.fixpoint.round",
                            round=rounds + 1,
                            delta_tuples=delta,
                        )
                except BudgetExceeded as error:
                    if on_budget == "partial":
                        return PartialRelation(current, rounds, str(error))
                    raise
            rounds += 1
            # syntactic stagnation of canonical tuples is a sound fixpoint
            # test for inflationary iteration (see repro.datalog.engine)
            if frozenset(grown.tuples) == frozenset(current.tuples):
                return current
            current = grown
            if max_rounds is not None and rounds >= max_rounds:
                error = round_limit_error(
                    "ccalc.fixpoint.round", max_rounds, rounds, guard
                )
                if on_budget == "partial":
                    return PartialRelation(current, rounds, str(error))
                raise error
