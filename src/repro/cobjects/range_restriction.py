"""Range restriction: the paper's alternative set semantics (end of §5).

"Before we end the section, we briefly discuss another approach to
incorporating sets into constraint databases.  This approach, called
'range restriction', uses syntactic conditions on formulas to ensure
that set values assigned to set variables are only from the input
database." -- with rules "defined similar to that for classical complex
objects in [GV91]".

Operational reading implemented here:

* the *restricted domain* of a set type consists of the set values
  occurring in the input and the query: the stored relations (as
  region objects), the constant set terms of the formula, and its
  closed comprehensions (evaluated once);
* :func:`check_range_restricted` enforces the syntactic condition --
  every quantified set variable must occur in at least one *binding*
  position (equality with a set term that is not itself a variable, or
  membership in a ground nested set), mirroring the [GV91] rule
  "if R(x1, ..., xn) is atomic then x1, ..., xn are range restricted";
* :func:`evaluate_ccalc_restricted` evaluates with set quantifiers
  ranging over the restricted domain only.

The payoff the paper hints at: the restricted domain is *linear* in
input + query size, against the exponential active domain -- measured
in ``tests/cobjects/test_range_restriction.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, List, Optional, Set, Tuple

from repro.cobjects.active_domain import ActiveDomain
from repro.cobjects.calculus import (
    CAnd,
    CExists,
    CForAll,
    CFormula,
    CNot,
    COr,
    Comprehension,
    ExistsSet,
    ForAllSet,
    Member,
    MemberSet,
    SetConst,
    SetEq,
    SetTerm,
    SetVar,
    _Translator,
    _substitute_set,
)
from repro.cobjects.objects import CObject, FiniteSetObject, RegionObject, check_type
from repro.cobjects.types import SetType, flat_arity, is_flat
from repro.core.database import Database
from repro.core.evaluator import evaluate as core_evaluate
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.errors import EvaluationError, TypeCheckError

__all__ = [
    "RangeRestrictionError",
    "check_range_restricted",
    "restricted_domain",
    "evaluate_ccalc_restricted",
    "evaluate_ccalc_restricted_boolean",
]


class RangeRestrictionError(EvaluationError):
    """A set quantifier has no binding occurrence."""


def _is_binding_term(term: SetTerm, variable: str) -> bool:
    """Can ``term`` bind ``variable``?  (It must not be a variable.)"""
    if isinstance(term, SetVar):
        return False
    return True


def _binds(formula: CFormula, variable: str) -> bool:
    """Does ``formula`` contain a binding occurrence of the set variable?

    Binding positions: ``S = t`` / ``t = S`` with ``t`` not a variable,
    and ``S in T`` with ``T`` not a variable.  Occurrences under a
    shadowing re-quantification do not count.
    """
    if isinstance(formula, SetEq):
        left_var = isinstance(formula.left, SetVar) and formula.left.name == variable
        right_var = isinstance(formula.right, SetVar) and formula.right.name == variable
        if left_var and _is_binding_term(formula.right, variable):
            return True
        if right_var and _is_binding_term(formula.left, variable):
            return True
        return False
    if isinstance(formula, MemberSet):
        element_var = (
            isinstance(formula.element, SetVar) and formula.element.name == variable
        )
        return element_var and _is_binding_term(formula.term, variable)
    if isinstance(formula, (CAnd, COr)):
        return any(_binds(s, variable) for s in formula.subs)
    if isinstance(formula, CNot):
        return _binds(formula.sub, variable)
    if isinstance(formula, (CExists, CForAll)):
        return _binds(formula.sub, variable)
    if isinstance(formula, (ExistsSet, ForAllSet)):
        if formula.var.name == variable:  # shadowed
            return False
        return _binds(formula.sub, variable)
    return False


def check_range_restricted(formula: CFormula) -> List[str]:
    """Names of quantified set variables with *no* binding occurrence.

    An empty list means the formula is range restricted.
    """
    violations: List[str] = []

    def walk(node: CFormula) -> None:
        if isinstance(node, (ExistsSet, ForAllSet)):
            if not _binds(node.sub, node.var.name):
                violations.append(node.var.name)
            walk(node.sub)
            return
        if isinstance(node, (CAnd, COr)):
            for s in node.subs:
                walk(s)
            return
        if isinstance(node, CNot):
            walk(node.sub)
            return
        if isinstance(node, (CExists, CForAll)):
            walk(node.sub)
            return

    walk(formula)
    return violations


def _collect_set_constants(formula: CFormula, out: Set[CObject]) -> None:
    def from_term(term: SetTerm) -> None:
        if isinstance(term, SetConst):
            out.add(term.value)

    if isinstance(formula, SetEq):
        from_term(formula.left)
        from_term(formula.right)
    elif isinstance(formula, MemberSet):
        from_term(formula.element)
        from_term(formula.term)
        # elements of ground nested sets are candidate values too
        if isinstance(formula.term, SetConst) and isinstance(
            formula.term.value, FiniteSetObject
        ):
            out |= set(formula.term.value.elements)
    elif isinstance(formula, Member):
        from_term(formula.term)
    elif isinstance(formula, (CAnd, COr)):
        for s in formula.subs:
            _collect_set_constants(s, out)
    elif isinstance(formula, CNot):
        _collect_set_constants(formula.sub, out)
    elif isinstance(formula, (CExists, CForAll, ExistsSet, ForAllSet)):
        _collect_set_constants(formula.sub, out)


def _collect_closed_comprehensions(
    formula: CFormula, db: Database, adom: ActiveDomain, out: Set[CObject]
) -> None:
    """Evaluate comprehensions with no free set variables to objects."""

    def from_term(term: SetTerm) -> None:
        if isinstance(term, Comprehension) and not _has_set_variables(term.body):
            translator = _Translator(db, adom)
            try:
                out.add(translator.resolve(term))
            except EvaluationError:
                pass  # parameterized comprehensions are grounded later

    if isinstance(formula, (SetEq,)):
        from_term(formula.left)
        from_term(formula.right)
    elif isinstance(formula, MemberSet):
        from_term(formula.element)
        from_term(formula.term)
    elif isinstance(formula, Member):
        from_term(formula.term)
    elif isinstance(formula, (CAnd, COr)):
        for s in formula.subs:
            _collect_closed_comprehensions(s, db, adom, out)
    elif isinstance(formula, CNot):
        _collect_closed_comprehensions(formula.sub, db, adom, out)
    elif isinstance(formula, (CExists, CForAll, ExistsSet, ForAllSet)):
        _collect_closed_comprehensions(formula.sub, db, adom, out)


def _has_set_variables(formula: CFormula) -> bool:
    def in_term(term: SetTerm) -> bool:
        if isinstance(term, SetVar):
            return True
        if isinstance(term, Comprehension):
            return _has_set_variables(term.body)
        return False

    if isinstance(formula, SetEq):
        return in_term(formula.left) or in_term(formula.right)
    if isinstance(formula, MemberSet):
        return in_term(formula.element) or in_term(formula.term)
    if isinstance(formula, Member):
        return in_term(formula.term)
    if isinstance(formula, (CAnd, COr)):
        return any(_has_set_variables(s) for s in formula.subs)
    if isinstance(formula, CNot):
        return _has_set_variables(formula.sub)
    if isinstance(formula, (CExists, CForAll)):
        return _has_set_variables(formula.sub)
    if isinstance(formula, (ExistsSet, ForAllSet)):
        return True
    return False


def restricted_domain(
    formula: CFormula, database: Database, ctype: SetType
) -> List[CObject]:
    """The input-derived candidates for a set variable of ``ctype``.

    Stored relations of matching arity, constant set terms, and closed
    comprehensions of the query -- linear in input + query size.
    """
    adom = ActiveDomain(database)
    candidates: Set[CObject] = set()
    if is_flat(ctype.element):
        arity = flat_arity(ctype.element)
        for name in database.names():
            relation = database[name]
            if relation.arity == arity:
                schema = tuple(f"x{i}" for i in range(arity))
                normalized = Relation(
                    DENSE_ORDER,
                    schema,
                    [t.reorder(schema) for t in relation.rename(
                        dict(zip(relation.schema, schema))
                    ).tuples],
                )
                candidates.add(RegionObject(normalized))
    _collect_set_constants(formula, candidates)
    _collect_closed_comprehensions(formula, database, adom, candidates)
    return [c for c in candidates if check_type(c, ctype)]


def evaluate_ccalc_restricted(
    formula: CFormula,
    database: Database,
    extra_constants: Iterable[Fraction] = (),
) -> Relation:
    """Evaluate under the range-restricted semantics.

    Raises :class:`RangeRestrictionError` if some quantified set
    variable has no binding occurrence (the syntactic condition).
    """
    violations = check_range_restricted(formula)
    if violations:
        names = ", ".join(sorted(set(violations)))
        raise RangeRestrictionError(
            f"set variables without a binding occurrence: {names}"
        )
    adom = ActiveDomain(database, extra_constants)
    grounded = _ground_set_quantifiers(formula, database)
    translator = _Translator(database, adom)
    translated = translator.translate(grounded)
    return core_evaluate(translated, translator.temp, DENSE_ORDER)


def evaluate_ccalc_restricted_boolean(
    formula: CFormula,
    database: Database,
    extra_constants: Iterable[Fraction] = (),
) -> bool:
    result = evaluate_ccalc_restricted(formula, database, extra_constants)
    if result.schema:
        raise EvaluationError(
            f"formula is not a sentence; free point variables {result.schema}"
        )
    return not result.is_empty()


def _ground_set_quantifiers(formula: CFormula, database: Database) -> CFormula:
    """Replace set quantifiers by finite connectives over the restricted
    domain (top-down; inner quantifiers are grounded recursively)."""
    if isinstance(formula, (ExistsSet, ForAllSet)):
        domain = restricted_domain(formula, database, formula.var.ctype)
        parts = []
        for obj in domain:
            grounded = _substitute_set(formula.sub, formula.var.name, obj)
            parts.append(_ground_set_quantifiers(grounded, database))
        if isinstance(formula, ExistsSet):
            from repro.cobjects.calculus import CFalse

            return COr(tuple(parts)) if parts else CFalse()
        from repro.cobjects.calculus import CTrue

        return CAnd(tuple(parts)) if parts else CTrue()
    if isinstance(formula, CAnd):
        return CAnd(tuple(_ground_set_quantifiers(s, database) for s in formula.subs))
    if isinstance(formula, COr):
        return COr(tuple(_ground_set_quantifiers(s, database) for s in formula.subs))
    if isinstance(formula, CNot):
        return CNot(_ground_set_quantifiers(formula.sub, database))
    if isinstance(formula, CExists):
        return CExists(formula.variables, _ground_set_quantifiers(formula.sub, database))
    if isinstance(formula, CForAll):
        return CForAll(formula.variables, _ground_set_quantifiers(formula.sub, database))
    return formula
